// FastTrack-style race detector: vector-clock algebra, the read/write rules
// (exclusive epoch vs inflated read vector), lock-induced happens-before,
// and end-to-end checks that the detector flags racy schedules and stays
// silent on synchronized ones.
#include "raceck/race_detector.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "raceck/vector_clock.hpp"
#include "runtime/runtime.hpp"

namespace ht {
namespace {

// --- VectorClock / Epoch -------------------------------------------------------

TEST(Epoch, PacksTidAndClock) {
  const Epoch e(5, 123456789);
  EXPECT_EQ(e.tid(), 5u);
  EXPECT_EQ(e.clock(), 123456789u);
  EXPECT_FALSE(e.is_zero());
  EXPECT_TRUE(Epoch{}.is_zero());
}

TEST(VectorClock, JoinIsPointwiseMax) {
  VectorClock a, b;
  a.set(0, 3);
  a.set(1, 1);
  b.set(1, 5);
  b.set(2, 2);
  a.join(b);
  EXPECT_EQ(a.get(0), 3u);
  EXPECT_EQ(a.get(1), 5u);
  EXPECT_EQ(a.get(2), 2u);
}

TEST(VectorClock, CoversEpochAndClock) {
  VectorClock c;
  c.set(1, 4);
  EXPECT_TRUE(c.covers(Epoch(1, 4)));
  EXPECT_TRUE(c.covers(Epoch(1, 3)));
  EXPECT_FALSE(c.covers(Epoch(1, 5)));
  EXPECT_FALSE(c.covers(Epoch(2, 1)));

  VectorClock d;
  d.set(1, 3);
  EXPECT_TRUE(c.covers_all(d));
  d.set(0, 1);
  EXPECT_FALSE(c.covers_all(d));
}

TEST(VectorClock, TickAdvancesOwnComponent) {
  VectorClock c;
  c.tick(3);
  c.tick(3);
  EXPECT_EQ(c.get(3), 2u);
  EXPECT_EQ(c.get(0), 0u);
}

// --- detector rules (deterministic, single OS thread, two contexts) -----------

struct DetectorFixture : ::testing::Test {
  Runtime rt;
  RaceDetector rd{8};
  ThreadContext& t0 = rt.register_thread();
  ThreadContext& t1 = rt.register_thread();
  RaceCheckedVar<std::uint64_t> x;

  void SetUp() override {
    rd.attach_thread(t0);
    rd.attach_thread(t1);
    x.init(rd, t0, 0);
  }

  RaceReport total() { return rd.total_report(2); }
};

TEST_F(DetectorFixture, SameThreadAccessesNeverRace) {
  x.store(rd, t0, 1);
  (void)x.load(rd, t0);
  x.store(rd, t0, 2);
  EXPECT_EQ(total().total(), 0u);
}

TEST_F(DetectorFixture, UnsynchronizedWriteWriteRaces) {
  x.store(rd, t0, 1);
  x.store(rd, t1, 2);
  const RaceReport r = total();
  EXPECT_EQ(r.write_write, 1u);
}

TEST_F(DetectorFixture, UnsynchronizedWriteReadRaces) {
  x.store(rd, t0, 1);
  (void)x.load(rd, t1);
  EXPECT_EQ(total().write_read, 1u);
}

TEST_F(DetectorFixture, UnsynchronizedReadWriteRaces) {
  (void)x.load(rd, t0);
  x.store(rd, t1, 1);
  EXPECT_EQ(total().read_write, 1u);
}

TEST_F(DetectorFixture, LockOrderingSuppressesRaces) {
  int lock_tag;  // identity only
  rd.on_acquire(t0, &lock_tag);
  x.store(rd, t0, 1);
  rd.on_release(t0, &lock_tag);

  rd.on_acquire(t1, &lock_tag);
  (void)x.load(rd, t1);
  x.store(rd, t1, 2);
  rd.on_release(t1, &lock_tag);

  rd.on_acquire(t0, &lock_tag);
  x.store(rd, t0, 3);
  rd.on_release(t0, &lock_tag);
  EXPECT_EQ(total().total(), 0u);
}

TEST_F(DetectorFixture, DifferentLocksDoNotOrder) {
  int lock_a, lock_b;
  rd.on_acquire(t0, &lock_a);
  x.store(rd, t0, 1);
  rd.on_release(t0, &lock_a);

  rd.on_acquire(t1, &lock_b);
  x.store(rd, t1, 2);
  rd.on_release(t1, &lock_b);
  EXPECT_EQ(total().write_write, 1u);
}

TEST_F(DetectorFixture, SharedReadersThenOrderedWriteIsClean) {
  int lock_tag;
  // Both read under the lock (still concurrent reads are fine in any case).
  rd.on_acquire(t0, &lock_tag);
  (void)x.load(rd, t0);
  rd.on_release(t0, &lock_tag);
  rd.on_acquire(t1, &lock_tag);
  (void)x.load(rd, t1);
  rd.on_release(t1, &lock_tag);
  // Writer synchronizes with both via the same lock.
  rd.on_acquire(t0, &lock_tag);
  x.store(rd, t0, 1);
  rd.on_release(t0, &lock_tag);
  EXPECT_EQ(total().total(), 0u);
}

TEST_F(DetectorFixture, SharedReadersThenRacyWrite) {
  // Concurrent reads (no sync) — reads don't race with each other...
  (void)x.load(rd, t0);
  (void)x.load(rd, t1);
  EXPECT_EQ(total().total(), 0u);
  // ...but an unordered write races with the read set (one report).
  x.store(rd, t0, 1);
  EXPECT_EQ(total().read_write, 1u);
}

TEST_F(DetectorFixture, ForkEdgeOrdersChildAfterParent) {
  x.store(rd, t0, 1);
  rd.on_fork(t0, t1);
  (void)x.load(rd, t1);  // ordered by the fork edge
  x.store(rd, t1, 2);
  EXPECT_EQ(total().total(), 0u);
}

// --- end-to-end: detector as an oracle over concurrent schedules ---------------

TEST(RaceDetectorConcurrent, SynchronizedCountersStayClean) {
  Runtime rt;
  RaceDetector rd(8);
  RaceCheckedVar<std::uint64_t> counter;
  std::mutex mu;  // identity doubles as program lock

  constexpr int kThreads = 4, kIters = 5'000;
  std::vector<std::thread> ts;
  std::atomic<int> ready{0};
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&] {
      ThreadContext& ctx = rt.register_thread();
      rd.attach_thread(ctx);
      if (ctx.id == 0) counter.init(rd, ctx, 0);
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      for (int j = 0; j < kIters; ++j) {
        mu.lock();
        rd.on_acquire(ctx, &mu);
        counter.store(rd, ctx, counter.load(rd, ctx) + 1);
        rd.on_release(ctx, &mu);
        mu.unlock();
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(rd.total_report(kThreads).total(), 0u);
  EXPECT_EQ(counter.raw_load(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(RaceDetectorConcurrent, RacyCountersAreFlagged) {
  Runtime rt;
  RaceDetector rd(8);
  RaceCheckedVar<std::uint64_t> counter;

  constexpr int kThreads = 4, kIters = 20'000;
  std::vector<std::thread> ts;
  std::atomic<int> ready{0};
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&] {
      ThreadContext& ctx = rt.register_thread();
      rd.attach_thread(ctx);
      if (ctx.id == 0) counter.init(rd, ctx, 0);
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      for (int j = 0; j < kIters; ++j) {
        counter.store(rd, ctx, counter.load(rd, ctx) + 1);
        if (j % 64 == 0) std::this_thread::yield();
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_GT(rd.total_report(kThreads).total(), 0u);
}

}  // namespace
}  // namespace ht
