// End-to-end record & replay soundness (paper §4).
//
// The strongest checkable property: replaying the recorded happens-before
// edges reproduces every loaded value. The workload body folds every load
// into a per-thread checksum; if the recorder missed a cross-thread
// dependence, some racy load would read a different value during replay and
// the checksums would diverge. The parameterized sweep covers low-conflict,
// synchronized-conflict, and racy-conflict configurations under both the
// optimistic recorder (§4.1) and the hybrid recorder (§4.2).
#include <gtest/gtest.h>

#include "recorder/recorder.hpp"
#include "recorder/replayer.hpp"
#include "tracking/hybrid_tracker.hpp"
#include "tracking/optimistic_tracker.hpp"
#include "workload/apis.hpp"
#include "workload/workload.hpp"

namespace ht {
namespace {

struct RecordReplayCase {
  const char* label;
  std::uint32_t hotsync_p100k;
  std::uint32_t hotracy_p100k;
  std::uint32_t hotglobal_p100k;
  std::uint64_t seed;
};

WorkloadConfig make_config(const RecordReplayCase& c) {
  WorkloadConfig cfg;
  cfg.name = c.label;
  cfg.threads = 4;
  cfg.ops_per_thread = 6'000;
  cfg.readshare_p100k = 10'000;
  cfg.sharedgen_p100k = 2'000;
  cfg.hotsync_p100k = c.hotsync_p100k;
  cfg.hotracy_p100k = c.hotracy_p100k;
  cfg.hotglobal_p100k = c.hotglobal_p100k;
  cfg.hot_objects = 4;
  cfg.base_seed = c.seed;
  return cfg;
}

template <template <bool, typename> class TrackerT>
void record_then_replay(const WorkloadConfig& cfg) {
  WorkloadData data(cfg);

  // --- record ---------------------------------------------------------------
  Runtime rt;
  DependenceRecorder recorder(rt);
  using Tracker = TrackerT<false, DependenceRecorder>;
  Tracker tracker = [&] {
    if constexpr (std::is_constructible_v<Tracker, Runtime&, HybridConfig,
                                          DependenceRecorder*>) {
      return Tracker(rt, HybridConfig{}, &recorder);
    } else {
      return Tracker(rt, &recorder);
    }
  }();

  const WorkloadRunResult recorded = run_workload(
      cfg, data, [&](ThreadId) { return DirectApi<Tracker>(rt, tracker, &recorder); });

  const Recording recording =
      recorder.take_recording(static_cast<ThreadId>(cfg.threads));
  ASSERT_EQ(recording.threads.size(), static_cast<std::size_t>(cfg.threads));

  // --- replay ---------------------------------------------------------------
  Replayer replayer(recording);
  const WorkloadRunResult replayed = run_workload(
      cfg, data, [&](ThreadId) { return ReplayApi(replayer); });

  // Value determinism: every thread observed identical loaded values.
  for (int t = 0; t < cfg.threads; ++t) {
    EXPECT_EQ(recorded.checksums[static_cast<std::size_t>(t)],
              replayed.checksums[static_cast<std::size_t>(t)])
        << "thread " << t << " diverged under " << cfg.name
        << " (recording: " << recording.summary() << ")";
  }
}

class RecordReplayP : public ::testing::TestWithParam<RecordReplayCase> {};

TEST_P(RecordReplayP, OptimisticRecorderIsValueDeterministic) {
  record_then_replay<OptimisticTracker>(make_config(GetParam()));
}

TEST_P(RecordReplayP, HybridRecorderIsValueDeterministic) {
  record_then_replay<HybridTracker>(make_config(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RecordReplayP,
    ::testing::Values(
        RecordReplayCase{"low_conflict", 0, 0, 0, 1},
        RecordReplayCase{"sync_conflicts", 2'000, 0, 0, 2},
        RecordReplayCase{"racy_conflicts", 0, 2'000, 0, 3},
        RecordReplayCase{"global_lock", 0, 0, 2'000, 4},
        RecordReplayCase{"mixed_heavy", 2'000, 1'000, 500, 5},
        RecordReplayCase{"mixed_heavy_alt_seed", 2'000, 1'000, 500, 77}),
    [](const ::testing::TestParamInfo<RecordReplayCase>& param_info) {
      return std::string(param_info.param.label) + "_seed" +
             std::to_string(param_info.param.seed);
    });

TEST(RecordReplay, HybridAndOptimisticRecordersCaptureDependences) {
  // "it still detects and records the same number of cross-thread
  // dependences" (§7.6) — the counts need not match exactly (the hybrid
  // recorder uses conservative fan-out edges where the state word names no
  // owner), but both must capture a nonempty dependence set on a conflict-
  // heavy run.
  const WorkloadConfig cfg =
      make_config(RecordReplayCase{"dep_count", 2'000, 1'000, 0, 9});
  WorkloadData data(cfg);

  Runtime rt_o;
  DependenceRecorder rec_o(rt_o);
  OptimisticTracker<false, DependenceRecorder> opt(rt_o, &rec_o);
  (void)run_workload(cfg, data, [&](ThreadId) {
    return DirectApi<OptimisticTracker<false, DependenceRecorder>>(rt_o, opt,
                                                                   &rec_o);
  });
  const Recording ro = rec_o.take_recording(static_cast<ThreadId>(cfg.threads));

  Runtime rt_h;
  DependenceRecorder rec_h(rt_h);
  HybridTracker<false, DependenceRecorder> hyb(rt_h, HybridConfig{}, &rec_h);
  (void)run_workload(cfg, data, [&](ThreadId) {
    return DirectApi<HybridTracker<false, DependenceRecorder>>(rt_h, hyb,
                                                               &rec_h);
  });
  const Recording rh = rec_h.take_recording(static_cast<ThreadId>(cfg.threads));

  EXPECT_GT(ro.total_edges(), 0u);
  EXPECT_GT(rh.total_edges(), 0u);
}

TEST(RecordReplay, SingleThreadedRecordingHasNoEdges) {
  WorkloadConfig cfg;
  cfg.threads = 1;
  cfg.ops_per_thread = 2'000;
  cfg.hotsync_p100k = 1'000;
  WorkloadData data(cfg);
  Runtime rt;
  DependenceRecorder recorder(rt);
  OptimisticTracker<false, DependenceRecorder> tracker(rt, &recorder);
  (void)run_workload(cfg, data, [&](ThreadId) {
    return DirectApi<OptimisticTracker<false, DependenceRecorder>>(rt, tracker,
                                                                   &recorder);
  });
  const Recording r = recorder.take_recording(1);
  EXPECT_EQ(r.total_edges(), 0u);
}

}  // namespace
}  // namespace ht
