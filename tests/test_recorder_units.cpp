// Unit tests for the recorder/replayer data structures and mechanics,
// complementing the end-to-end value-determinism tests.
#include <gtest/gtest.h>

#include <thread>

#include "recorder/dependence_log.hpp"
#include "recorder/recorder.hpp"
#include "recorder/replayer.hpp"
#include "test_util.hpp"
#include "tracking/optimistic_tracker.hpp"
#include "tracking/tracked_var.hpp"

namespace ht {
namespace {

TEST(ThreadLog, CountsEdgeResponseAndRegionEvents) {
  ThreadLog log;
  log.events.push_back({1, LogEventType::kEdge, 0, 5});
  log.events.push_back({2, LogEventType::kResponse, kNoThread, 0});
  log.events.push_back({2, LogEventType::kEdge, 1, 9});
  log.events.push_back({4, LogEventType::kRegionEnd, kNoThread, 2});
  EXPECT_EQ(log.edge_count(), 2u);
  EXPECT_EQ(log.response_count(), 1u);
  EXPECT_EQ(log.region_end_count(), 1u);
  EXPECT_FALSE(log.events[0].is_bump());
  EXPECT_TRUE(log.events[1].is_bump());
  EXPECT_TRUE(log.events[3].is_bump());
}

TEST(Recording, SummaryAggregates) {
  Recording r;
  r.threads.resize(2);
  r.threads[0].events.push_back({1, LogEventType::kEdge, 1, 5});
  r.threads[1].events.push_back({3, LogEventType::kResponse, kNoThread, 0});
  EXPECT_EQ(r.total_edges(), 1u);
  EXPECT_EQ(r.total_responses(), 1u);
  EXPECT_NE(r.summary().find("2 threads"), std::string::npos);
}

TEST(DependenceRecorder, EdgeRecordsPointIndexAndSource) {
  Runtime rt;
  DependenceRecorder rec(rt);
  ThreadContext& ctx = rt.register_thread();
  ctx.point_index = 42;
  rec.edge(ctx, 3, 1234);
  const ThreadLog& log = rec.log(ctx.id);
  ASSERT_EQ(log.events.size(), 1u);
  EXPECT_EQ(log.events[0].point, 42u);
  EXPECT_EQ(log.events[0].type, LogEventType::kEdge);
  EXPECT_EQ(log.events[0].src, 3u);
  EXPECT_EQ(log.events[0].value, 1234u);
}

TEST(DependenceRecorder, EdgeAllOthersFansOutToEveryRegisteredThread) {
  Runtime rt;
  DependenceRecorder rec(rt);
  ThreadContext& a = rt.register_thread();
  ThreadContext& b = rt.register_thread();
  ThreadContext& c = rt.register_thread();
  b.owner_side.release_counter.store(7, std::memory_order_relaxed);
  c.owner_side.release_counter.store(9, std::memory_order_relaxed);
  rec.edge_all_others(a, rt);
  const ThreadLog& log = rec.log(a.id);
  ASSERT_EQ(log.events.size(), 2u);
  EXPECT_EQ(log.events[0].src, b.id);
  EXPECT_EQ(log.events[0].value, 7u);
  EXPECT_EQ(log.events[1].src, c.id);
  EXPECT_EQ(log.events[1].value, 9u);
}

TEST(DependenceRecorder, ResponseHookLogsNondeterministicBumps) {
  Runtime rt;
  DependenceRecorder rec(rt);
  ThreadContext& owner = rt.register_thread();
  ThreadContext& requester = rt.register_thread();
  rec.attach_thread(owner);
  owner.point_index = 10;

  std::atomic<bool> done{false};
  std::thread req([&] {
    (void)rt.coordinate(requester, owner.id);
    done.store(true);
  });
  while (!done.load()) {
    rt.poll(owner);
    std::this_thread::yield();
  }
  req.join();
  const ThreadLog& log = rec.log(owner.id);
  ASSERT_GE(log.events.size(), 1u);
  EXPECT_EQ(log.events[0].type, LogEventType::kResponse);
  // The response lands at whichever poll first saw the request; polls bump
  // the point index first, so the point is strictly past the starting 10.
  EXPECT_GT(log.events[0].point, 10u);
}

TEST(DependenceRecorder, PsroBumpsLogRegionMarksNotResponses) {
  Runtime rt;
  DependenceRecorder rec(rt);
  ThreadContext& ctx = rt.register_thread();
  rec.attach_thread(ctx);
  rt.psro(ctx);
  rt.psro(ctx);
  // Deterministic bumps never appear as kResponse (the replayer re-issues
  // them by construction) but each leaves a kRegionEnd mark stamped with the
  // post-bump counter, so offline analyses see every region boundary.
  const ThreadLog& log = rec.log(ctx.id);
  ASSERT_EQ(log.events.size(), 2u);
  EXPECT_EQ(log.response_count(), 0u);
  EXPECT_EQ(log.region_end_count(), 2u);
  EXPECT_EQ(log.events[0].type, LogEventType::kRegionEnd);
  EXPECT_EQ(log.events[0].value, 1u);
  EXPECT_EQ(log.events[1].value, 2u);
}

TEST(DependenceRecorder, TakeRecordingResetsLogs) {
  Runtime rt;
  DependenceRecorder rec(rt);
  ThreadContext& ctx = rt.register_thread();
  rec.edge(ctx, 0, 1);
  const Recording r = rec.take_recording(1);
  EXPECT_EQ(r.total_edges(), 1u);
  EXPECT_TRUE(rec.log(0).events.empty());
}

// --- Replayer ----------------------------------------------------------------

Recording two_thread_recording() {
  Recording r;
  r.threads.resize(2);
  return r;
}

TEST(Replayer, AppliesResponseBumpsAtRecordedPoints) {
  Recording r = two_thread_recording();
  r.threads[0].events.push_back({3, LogEventType::kResponse, kNoThread, 0});
  Replayer rp(r);
  rp.at_point(0);  // 1
  rp.at_point(0);  // 2
  EXPECT_EQ(rp.release_counter(0), 0u);
  rp.at_point(0);  // 3: logged bump fires
  EXPECT_EQ(rp.release_counter(0), 1u);
}

TEST(Replayer, PsroBumpsAreDeterministic) {
  Recording r = two_thread_recording();
  Replayer rp(r);
  rp.at_psro(0);
  rp.at_psro(0);
  EXPECT_EQ(rp.release_counter(0), 2u);
}

TEST(Replayer, ThreadEndBumpMirrorsUnregister) {
  Recording r = two_thread_recording();
  Replayer rp(r);
  rp.at_thread_end(1);
  EXPECT_EQ(rp.release_counter(1), 1u);
}

TEST(Replayer, EdgeBlocksUntilSourceReachesValue) {
  Recording r = two_thread_recording();
  r.threads[0].events.push_back({1, LogEventType::kEdge, 1, 2});
  Replayer rp(r);

  std::atomic<bool> passed{false};
  std::thread sink([&] {
    rp.at_point(0);  // blocks until thread 1's counter reaches 2
    passed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(passed.load());
  rp.at_psro(1);
  EXPECT_FALSE(passed.load());
  rp.at_psro(1);  // counter reaches 2
  sink.join();
  EXPECT_TRUE(passed.load());
  EXPECT_GE(rp.blocking_waits(), 1u);
}

TEST(Replayer, SatisfiedEdgeDoesNotBlock) {
  Recording r = two_thread_recording();
  r.threads[0].events.push_back({1, LogEventType::kEdge, 1, 1});
  Replayer rp(r);
  rp.at_psro(1);
  rp.at_point(0);  // already satisfied
  EXPECT_EQ(rp.blocking_waits(), 0u);
}

TEST(Replayer, MultipleEventsAtOnePointApplyInLogOrder) {
  Recording r = two_thread_recording();
  r.threads[0].events.push_back({1, LogEventType::kResponse, kNoThread, 0});
  r.threads[0].events.push_back({1, LogEventType::kEdge, 1, 1});
  r.threads[1].events.push_back({1, LogEventType::kEdge, 0, 1});
  Replayer rp(r);
  // Thread 1 waits for thread 0's counter >= 1, which the kResponse at
  // thread 0's point 1 provides — and thread 0 then waits for thread 1.
  std::thread t0([&] { rp.at_point(0); });
  std::thread t1([&] {
    rp.at_point(1);
    rp.at_psro(1);  // satisfies thread 0's edge (value 1)
  });
  t0.join();
  t1.join();
  SUCCEED();
}

}  // namespace
}  // namespace ht
