// Unit tests for recorder/recording_analysis: summary statistics, the
// replay-parallelism proxies, and the Graphviz export — including the
// degenerate (empty, single-thread) recordings the workload paths never
// produce.
#include <gtest/gtest.h>

#include <string>

#include "recorder/recording_analysis.hpp"

namespace ht {
namespace {

TEST(RecordingAnalysis, EmptyRecordingIsFullyParallel) {
  const RecordingAnalysis a = analyze_recording(Recording{});
  EXPECT_EQ(a.threads, 0u);
  EXPECT_EQ(a.total_edges, 0u);
  EXPECT_EQ(a.total_responses, 0u);
  EXPECT_EQ(a.total_region_marks, 0u);
  EXPECT_EQ(a.distinct_wait_points, 0u);
  EXPECT_TRUE(a.fully_parallel());
  EXPECT_NE(a.summary().find("fully parallel"), std::string::npos);
}

TEST(RecordingAnalysis, SingleThreadHasNoCrossThreadOrdering) {
  Recording r;
  r.threads.resize(1);
  r.threads[0].events.push_back({2, LogEventType::kResponse, kNoThread, 1});
  r.threads[0].events.push_back({7, LogEventType::kResponse, kNoThread, 2});
  const RecordingAnalysis a = analyze_recording(r);
  EXPECT_EQ(a.threads, 1u);
  EXPECT_EQ(a.total_edges, 0u);
  EXPECT_EQ(a.total_responses, 2u);
  EXPECT_TRUE(a.fully_parallel());
  ASSERT_EQ(a.edges_out.size(), 1u);
  EXPECT_EQ(a.edges_out[0], 0u);
}

TEST(RecordingAnalysis, CountsEdgesPerThreadAndDistinctWaitPoints) {
  Recording r;
  r.threads.resize(3);
  r.threads[0].events.push_back({1, LogEventType::kResponse, kNoThread, 1});
  // Two edges at the SAME instrumentation point (one wait point), one at
  // another; all sink in thread 1, sourced from threads 0 and 2.
  r.threads[1].events.push_back({4, LogEventType::kEdge, 0, 1});
  r.threads[1].events.push_back({4, LogEventType::kEdge, 2, 1});
  r.threads[1].events.push_back({9, LogEventType::kEdge, 0, 1});
  r.threads[2].events.push_back({1, LogEventType::kResponse, kNoThread, 1});
  const RecordingAnalysis a = analyze_recording(r);
  EXPECT_EQ(a.total_edges, 3u);
  EXPECT_EQ(a.distinct_wait_points, 2u);
  EXPECT_FALSE(a.fully_parallel());
  EXPECT_EQ(a.edges_out[1], 3u);  // sinks
  EXPECT_EQ(a.edges_in[0], 2u);   // sources
  EXPECT_EQ(a.edges_in[2], 1u);
  EXPECT_EQ(a.edges_out[0], 0u);
  EXPECT_NE(a.summary().find("3 edges"), std::string::npos);
  EXPECT_NE(a.summary().find("2 distinct wait points"), std::string::npos);
}

TEST(RecordingAnalysis, RegionMarksAreNotResponses) {
  // kRegionEnd marks deterministic bumps (PSRO / thread exit); the replay
  // contract derives those itself, so analysis must keep the two counts
  // apart instead of inflating the response count.
  Recording r;
  r.threads.resize(1);
  r.threads[0].events.push_back({1, LogEventType::kResponse, kNoThread, 1});
  r.threads[0].events.push_back({3, LogEventType::kRegionEnd, kNoThread, 2});
  r.threads[0].events.push_back({5, LogEventType::kRegionEnd, kNoThread, 3});
  const RecordingAnalysis a = analyze_recording(r);
  EXPECT_EQ(a.total_responses, 1u);
  EXPECT_EQ(a.total_region_marks, 2u);
}

TEST(RecordingToDot, RendersTimelinesAndCrossEdges) {
  Recording r;
  r.threads.resize(2);
  r.threads[0].events.push_back({3, LogEventType::kResponse, kNoThread, 1});
  r.threads[1].events.push_back({5, LogEventType::kEdge, 0, 1});
  r.threads[1].events.push_back({8, LogEventType::kEdge, 0, 1});
  const std::string dot = recording_to_dot(r);
  EXPECT_NE(dot.find("digraph happens_before"), std::string::npos);
  EXPECT_NE(dot.find("\"T0@r1\" -> \"T1@p5\""), std::string::npos);
  // Program-order chain between the two sink points of thread 1.
  EXPECT_NE(dot.find("\"T1@p5\" -> \"T1@p8\""), std::string::npos);
  EXPECT_EQ(dot.find("truncated"), std::string::npos);
}

TEST(RecordingToDot, TruncatesAtMaxEdges) {
  Recording r;
  r.threads.resize(2);
  r.threads[0].events.push_back({1, LogEventType::kResponse, kNoThread, 1});
  for (std::uint64_t p = 0; p < 5; ++p) {
    r.threads[1].events.push_back({p, LogEventType::kEdge, 0, 1});
  }
  const std::string dot = recording_to_dot(r, /*max_edges=*/2);
  EXPECT_NE(dot.find("truncated at 2 edges"), std::string::npos);
}

}  // namespace
}  // namespace ht
