// Recording serialization: round trips, corruption handling (v2 salvages
// the longest valid prefix; v1 is all-or-nothing), and the analysis /
// DOT-export utilities.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "recorder/recording_analysis.hpp"
#include "recorder/recording_io.hpp"
#include "recorder/replayer.hpp"

namespace ht {
namespace {

Recording sample_recording() {
  Recording r;
  r.threads.resize(3);
  r.threads[0].events.push_back({5, LogEventType::kEdge, 1, 42});
  r.threads[0].events.push_back({9, LogEventType::kResponse, kNoThread, 0});
  r.threads[1].events.push_back({2, LogEventType::kEdge, 2, 7});
  r.threads[1].events.push_back({2, LogEventType::kEdge, 0, 3});
  // thread 2: empty log
  return r;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(RecordingIo, RoundTripsExactly) {
  const Recording orig = sample_recording();
  const std::string path = temp_path("ht_recording_roundtrip.bin");
  ASSERT_TRUE(save_recording(orig, path));

  const auto loaded = load_recording(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->threads.size(), orig.threads.size());
  for (std::size_t t = 0; t < orig.threads.size(); ++t) {
    EXPECT_EQ(loaded->threads[t].events, orig.threads[t].events) << t;
  }
  std::remove(path.c_str());
}

TEST(RecordingIo, EmptyRecordingRoundTrips) {
  Recording r;
  r.threads.resize(1);
  const std::string path = temp_path("ht_recording_empty.bin");
  ASSERT_TRUE(save_recording(r, path));
  const auto loaded = load_recording(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->threads.size(), 1u);
  EXPECT_TRUE(loaded->threads[0].events.empty());
  std::remove(path.c_str());
}

TEST(RecordingIo, RejectsMissingFile) {
  EXPECT_FALSE(load_recording("/nonexistent/dir/nothing.bin").has_value());
  EXPECT_EQ(load_recording_ex("/nonexistent/dir/nothing.bin").error,
            RecordingLoadError::kIo);
}

TEST(RecordingIo, RejectsBadMagic) {
  const std::string path = temp_path("ht_recording_badmagic.bin");
  std::ofstream(path, std::ios::binary) << "NOPE with some trailing bytes";
  EXPECT_FALSE(load_recording(path).has_value());
  EXPECT_EQ(load_recording_ex(path).error, RecordingLoadError::kBadMagic);
  std::remove(path.c_str());
}

TEST(RecordingIo, RejectsUnknownVersion) {
  const std::string path = temp_path("ht_recording_badversion.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out.write("HTRC", 4);
    const std::uint32_t version = 7;
    out.write(reinterpret_cast<const char*>(&version), sizeof version);
  }
  const RecordingLoadResult r = load_recording_ex(path);
  EXPECT_FALSE(r.recording.has_value());
  EXPECT_EQ(r.error, RecordingLoadError::kBadVersion);
  std::remove(path.c_str());
}

TEST(RecordingIo, TruncatedTrailerSalvagesFullContent) {
  // Cutting into the trailer leaves every data chunk intact: the salvage is
  // content-complete but flagged partial (the file cannot prove it is whole).
  const Recording orig = sample_recording();
  const std::string path = temp_path("ht_recording_trunc.bin");
  ASSERT_TRUE(save_recording(orig, path));
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 9);

  const RecordingLoadResult r = load_recording_ex(path);
  EXPECT_FALSE(r.complete());
  EXPECT_TRUE(r.partial);
  EXPECT_EQ(r.error, RecordingLoadError::kTruncated);
  ASSERT_TRUE(r.recording.has_value());
  ASSERT_EQ(r.recording->threads.size(), orig.threads.size());
  for (std::size_t t = 0; t < orig.threads.size(); ++t) {
    EXPECT_EQ(r.recording->threads[t].events, orig.threads[t].events) << t;
  }
  EXPECT_NE(r.to_string().find("partial"), std::string::npos);
  std::remove(path.c_str());
}

TEST(RecordingIo, BitFlipSalvagesPrefixBeforeCorruption) {
  const std::string path = temp_path("ht_recording_flip.bin");
  ASSERT_TRUE(save_recording(sample_recording(), path));
  {
    // Offset 20 is the first byte after the v2 header: the first chunk's
    // thread id. Flipping it invalidates that chunk and everything after.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(20);
    char c;
    f.seekg(20);
    f.get(c);
    f.seekp(20);
    f.put(static_cast<char>(c ^ 0x40));
  }
  const RecordingLoadResult r = load_recording_ex(path);
  EXPECT_FALSE(r.complete());
  EXPECT_TRUE(r.partial);
  EXPECT_EQ(r.error, RecordingLoadError::kChecksum);
  ASSERT_TRUE(r.recording.has_value());
  EXPECT_EQ(r.chunks_loaded, 0u);
  for (const ThreadLog& log : r.recording->threads) {
    EXPECT_TRUE(log.events.empty());
  }
  std::remove(path.c_str());
}

// --- v1 compatibility ---------------------------------------------------------

TEST(RecordingIo, V1FilesStillLoad) {
  const Recording orig = sample_recording();
  const std::string path = temp_path("ht_recording_v1.bin");
  ASSERT_TRUE(save_recording_v1(orig, path));
  const RecordingLoadResult r = load_recording_ex(path);
  ASSERT_TRUE(r.complete()) << r.to_string();
  ASSERT_EQ(r.recording->threads.size(), orig.threads.size());
  for (std::size_t t = 0; t < orig.threads.size(); ++t) {
    EXPECT_EQ(r.recording->threads[t].events, orig.threads[t].events) << t;
  }
  std::remove(path.c_str());
}

TEST(RecordingIo, V1TruncationRejectsWholeFile) {
  // v1 has one whole-file checksum: nothing can be salvaged.
  const std::string path = temp_path("ht_recording_v1_trunc.bin");
  ASSERT_TRUE(save_recording_v1(sample_recording(), path));
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 9);
  const RecordingLoadResult r = load_recording_ex(path);
  EXPECT_FALSE(r.recording.has_value());
  EXPECT_EQ(r.error, RecordingLoadError::kTruncated);
  std::remove(path.c_str());
}

TEST(RecordingIo, LoadedRecordingDrivesReplayer) {
  Recording r;
  r.threads.resize(2);
  r.threads[0].events.push_back({1, LogEventType::kEdge, 1, 1});
  const std::string path = temp_path("ht_recording_replay.bin");
  ASSERT_TRUE(save_recording(r, path));
  const auto loaded = load_recording(path);
  ASSERT_TRUE(loaded.has_value());

  Replayer rp(*loaded);
  rp.at_psro(1);   // source reaches 1
  rp.at_point(0);  // sink passes without blocking
  EXPECT_EQ(rp.blocking_waits(), 0u);
  std::remove(path.c_str());
}

// --- analysis ----------------------------------------------------------------

TEST(RecordingAnalysis, CountsStructure) {
  const RecordingAnalysis a = analyze_recording(sample_recording());
  EXPECT_EQ(a.threads, 3u);
  EXPECT_EQ(a.total_edges, 3u);
  EXPECT_EQ(a.total_responses, 1u);
  EXPECT_EQ(a.edges_out[0], 1u);
  EXPECT_EQ(a.edges_out[1], 2u);
  EXPECT_EQ(a.edges_in[0], 1u);  // thread 0 is source of one edge
  EXPECT_EQ(a.edges_in[1], 1u);
  EXPECT_EQ(a.edges_in[2], 1u);
  EXPECT_EQ(a.distinct_wait_points, 2u);  // (0,5) and (1,2)
  EXPECT_FALSE(a.fully_parallel());
  EXPECT_NE(a.summary().find("3 threads"), std::string::npos);
}

TEST(RecordingAnalysis, EmptyIsFullyParallel) {
  Recording r;
  r.threads.resize(2);
  const RecordingAnalysis a = analyze_recording(r);
  EXPECT_TRUE(a.fully_parallel());
  EXPECT_NE(a.summary().find("fully parallel"), std::string::npos);
}

TEST(RecordingDot, EmitsNodesAndEdges) {
  const std::string dot = recording_to_dot(sample_recording());
  EXPECT_NE(dot.find("digraph happens_before"), std::string::npos);
  EXPECT_NE(dot.find("\"T1@r42\" -> \"T0@p5\""), std::string::npos);
  EXPECT_NE(dot.find("\"T2@r7\" -> \"T1@p2\""), std::string::npos);
  EXPECT_EQ(dot.find("truncated"), std::string::npos);
}

TEST(RecordingDot, TruncatesLargeGraphs) {
  Recording r;
  r.threads.resize(2);
  for (int i = 0; i < 100; ++i) {
    r.threads[0].events.push_back(
        {static_cast<std::uint64_t>(i + 1), LogEventType::kEdge, 1, 1});
  }
  const std::string dot = recording_to_dot(r, /*max_edges=*/10);
  EXPECT_NE(dot.find("truncated at 10"), std::string::npos);
}

}  // namespace
}  // namespace ht
