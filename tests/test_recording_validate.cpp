// Recording validation checks.
#include "recorder/recording_validate.hpp"

#include <gtest/gtest.h>

namespace ht {
namespace {

TEST(RecordingValidate, AcceptsWellFormedRecording) {
  Recording r;
  r.threads.resize(2);
  r.threads[0].events.push_back({1, LogEventType::kEdge, 1, 5});
  r.threads[0].events.push_back({3, LogEventType::kResponse, kNoThread, 0});
  r.threads[1].events.push_back({2, LogEventType::kEdge, 0, 1});
  const ValidationResult v = validate_recording(r);
  EXPECT_TRUE(v.ok()) << v.to_string();
  EXPECT_EQ(v.to_string(), "recording OK");
}

TEST(RecordingValidate, RejectsEmptyRecording) {
  const ValidationResult v = validate_recording(Recording{});
  EXPECT_FALSE(v.ok());
  EXPECT_NE(v.to_string().find("no threads"), std::string::npos);
}

TEST(RecordingValidate, FlagsOutOfRangeSource) {
  Recording r;
  r.threads.resize(2);
  r.threads[0].events.push_back({1, LogEventType::kEdge, 7, 5});
  const ValidationResult v = validate_recording(r);
  ASSERT_EQ(v.issues.size(), 1u);
  EXPECT_NE(v.issues[0].message.find("out of range"), std::string::npos);
}

TEST(RecordingValidate, FlagsSelfEdge) {
  Recording r;
  r.threads.resize(2);
  r.threads[1].events.push_back({1, LogEventType::kEdge, 1, 5});
  const ValidationResult v = validate_recording(r);
  ASSERT_EQ(v.issues.size(), 1u);
  EXPECT_EQ(v.issues[0].thread, 1u);
  EXPECT_NE(v.issues[0].message.find("self-edge"), std::string::npos);
}

TEST(RecordingValidate, FlagsDecreasingPoints) {
  Recording r;
  r.threads.resize(1);
  r.threads[0].events.push_back({5, LogEventType::kResponse, kNoThread, 0});
  r.threads[0].events.push_back({3, LogEventType::kResponse, kNoThread, 0});
  const ValidationResult v = validate_recording(r);
  ASSERT_EQ(v.issues.size(), 1u);
  EXPECT_EQ(v.issues[0].event, 1u);
  EXPECT_NE(v.issues[0].message.find("decreases"), std::string::npos);
}

TEST(RecordingValidate, CollectsMultipleIssues) {
  Recording r;
  r.threads.resize(1);
  r.threads[0].events.push_back({5, LogEventType::kEdge, 0, 1});  // self-edge
  r.threads[0].events.push_back({2, LogEventType::kEdge, 9, 1});  // decreasing + range
  const ValidationResult v = validate_recording(r);
  EXPECT_EQ(v.issues.size(), 3u);
  EXPECT_NE(v.to_string().find("3 issue(s)"), std::string::npos);
}

}  // namespace
}  // namespace ht
