// Self-healing coordination (DESIGN.md §11): backoff escalation against a
// fake clock, watchdog diagnostics content, the quarantine state machine
// (terminal status, waiter release, victim self-parking at every safe-point
// flavor), ownership seizure landings, the QuarantineSweep wiring, the
// degradation governor's hysteresis, recorder sealing, stream-writer retry
// hardening — and the acceptance scenario: a run with a permanently stuck
// thread completes under the kQuarantine policy (and demonstrably fail-fasts
// without it) with a loadable, lint-clean recording.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "analysis/trace_lint.hpp"
#include "common/spin.hpp"
#include "faultinject/fault_injector.hpp"
#include "recorder/recorder.hpp"
#include "recorder/recording_io.hpp"
#include "recorder/recording_validate.hpp"
#include "resilience/governor.hpp"
#include "resilience/quarantine.hpp"
#include "resilience/seizure.hpp"
#include "runtime/runtime.hpp"
#include "test_util.hpp"
#include "tracking/hybrid_tracker.hpp"
#include "tracking/tracked_var.hpp"

namespace ht {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

// --- backoff escalation (fake clock) -------------------------------------------

// plan() exposes each wait step without performing it, so the whole
// escalation — spins, yields, doubling sleeps up to the cap — is checked
// against a virtual clock that just sums the planned sleep ticks.
TEST(BackoffEscalation, SpinsThenYieldsThenDoublingSleepsUpToCap) {
  Backoff b(/*spins_before_yield=*/2, /*yields_before_sleep=*/3,
            /*max_sleep_us=*/160, /*jitter_seed=*/0);

  Backoff::Step s = b.plan();
  EXPECT_EQ(s.kind, Backoff::StepKind::kSpin);
  EXPECT_EQ(s.spins, 1);
  EXPECT_FALSE(b.yielding());
  s = b.plan();
  EXPECT_EQ(s.kind, Backoff::StepKind::kSpin);
  EXPECT_EQ(s.spins, 2);
  EXPECT_TRUE(b.yielding());

  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(b.sleeping());
    s = b.plan();
    EXPECT_EQ(s.kind, Backoff::StepKind::kYield) << "round " << i;
  }
  EXPECT_TRUE(b.sleeping());

  // Sleep ticks double from kMinSleepUs and clamp at the cap; with jitter
  // disabled the virtual clock advances by exactly the doubling series.
  std::uint64_t fake_clock_us = 0;
  const int expected[] = {20, 40, 80, 160, 160, 160};
  for (int us : expected) {
    s = b.plan();
    EXPECT_EQ(s.kind, Backoff::StepKind::kSleep);
    EXPECT_TRUE(b.sleeping());
    EXPECT_EQ(s.sleep_us, us);
    fake_clock_us += static_cast<std::uint64_t>(s.sleep_us);
  }
  EXPECT_EQ(fake_clock_us, 20u + 40 + 80 + 160 + 160 + 160);

  // reset() rearms the full ladder.
  b.reset();
  s = b.plan();
  EXPECT_EQ(s.kind, Backoff::StepKind::kSpin);
  EXPECT_EQ(s.spins, 1);
}

// Jittered sleeps stay within ±25% of the unjittered tick, and the sequence
// is deterministic in the seed (two equal seeds plan identical schedules, a
// different seed diverges somewhere — the de-lockstep property).
TEST(BackoffEscalation, SleepJitterIsBoundedAndDeterministicInSeed) {
  Backoff a(0, 0, 256, /*jitter_seed=*/12345);
  Backoff b(0, 0, 256, /*jitter_seed=*/12345);
  Backoff c(0, 0, 256, /*jitter_seed=*/54321);
  int base = Backoff::kMinSleepUs;
  bool diverged = false;
  for (int i = 0; i < 32; ++i) {
    const Backoff::Step sa = a.plan();
    const Backoff::Step sb = b.plan();
    const Backoff::Step sc = c.plan();
    ASSERT_EQ(sa.kind, Backoff::StepKind::kSleep);
    EXPECT_EQ(sa.sleep_us, sb.sleep_us) << "same seed diverged at step " << i;
    EXPECT_GE(sa.sleep_us, base - base / 4) << "step " << i;
    EXPECT_LE(sa.sleep_us, base + base / 4) << "step " << i;
    if (sa.sleep_us != sc.sleep_us) diverged = true;
    if (base < 256) base = base * 2 > 256 ? 256 : base * 2;
  }
  EXPECT_TRUE(diverged) << "different seeds planned identical jitter";
}

// --- watchdog diagnostics ------------------------------------------------------

// The stall diagnostic must carry the stalled thread's liveness fingerprint:
// its last poll site, its last heartbeat epoch, and its ThreadStatus — both
// structured and in the rendered dump.
TEST(WatchdogDiagnostics, CarriesHeartbeatPollSiteAndStatus) {
  RuntimeConfig cfg;
  cfg.watchdog.stall_epochs = 128;
  cfg.watchdog.on_stall = WatchdogConfig::OnStall::kFailFast;
  cfg.watchdog.sink = [](const CoordStallDiagnostic&) {};
  Runtime rt(cfg);
  ThreadContext& self = rt.register_thread();
  ThreadContext& owner = rt.register_thread();
  for (int i = 0; i < 3; ++i) rt.poll(owner);  // then silent forever

  bool threw = false;
  try {
    rt.coordinate(self, owner.id);
  } catch (const CoordinationStalled& e) {
    threw = true;
    const ThreadLivenessSample& s = e.diagnostic.owner_sample;
    EXPECT_EQ(s.last_poll, 3u);
    EXPECT_GE(s.heartbeat, 3u);
    EXPECT_FALSE(s.blocked);
    EXPECT_FALSE(s.quarantined);
    EXPECT_FALSE(s.exited);
    const std::string text = e.diagnostic.to_string();
    EXPECT_NE(text.find("running"), std::string::npos);
    EXPECT_NE(text.find("last_poll=3"), std::string::npos);
    EXPECT_NE(text.find("heartbeat="), std::string::npos);
  }
  EXPECT_TRUE(threw);
}

// --- quarantine state machine --------------------------------------------------

TEST(Quarantine, FlipIsTerminalReleasesWaitersAndShowsInSamples) {
  Runtime rt;
  ThreadContext& self = rt.register_thread();
  ThreadContext& victim = rt.register_thread();

  EXPECT_TRUE(rt.quarantine_thread(self, victim.id));
  EXPECT_TRUE(rt.thread_quarantined(victim.id));
  EXPECT_TRUE(rt.has_quarantined());
  EXPECT_EQ(rt.quarantined_count(), 1u);
  EXPECT_FALSE(rt.quarantine_thread(self, victim.id));  // already terminal
  EXPECT_EQ(rt.quarantined_count(), 1u);

  // Quarantined subsumes Blocked: coordination succeeds implicitly, without
  // the victim ever responding.
  const Runtime::CoordResult r = rt.coordinate(self, victim.id);
  EXPECT_TRUE(r.implicit);

  const ThreadLivenessSample s = rt.sample_thread(victim.id);
  EXPECT_TRUE(s.quarantined);
  EXPECT_TRUE(s.blocked);  // the quarantine word carries the blocked bit
}

TEST(Quarantine, ExitedThreadsAreNotQuarantinable) {
  Runtime rt;
  ThreadContext& self = rt.register_thread();
  ThreadContext& victim = rt.register_thread();
  rt.unregister_thread(victim);
  EXPECT_FALSE(rt.quarantine_thread(self, victim.id));
  EXPECT_EQ(rt.quarantined_count(), 0u);
}

// The victim observes its own quarantine at every safe-point flavor and
// parks by unwinding, without flushing the states survivors now own.
TEST(Quarantine, VictimParksAtPollBlockingEntryWakeupAndSlowPaths) {
  Runtime rt;
  ThreadContext& self = rt.register_thread();

  ThreadContext& at_poll = rt.register_thread();
  ASSERT_TRUE(rt.quarantine_thread(self, at_poll.id));
  EXPECT_THROW(rt.poll(at_poll), ThreadQuarantined);
  EXPECT_TRUE(at_poll.quarantined_self);

  ThreadContext& at_entry = rt.register_thread();
  ASSERT_TRUE(rt.quarantine_thread(self, at_entry.id));
  EXPECT_THROW(rt.begin_blocking(at_entry), ThreadQuarantined);

  // Parked victim: the quarantine lands on top of BLOCKED; the late wake-up
  // must self-park instead of CASing back to running.
  ThreadContext& parked = rt.register_thread();
  rt.begin_blocking(parked);
  ASSERT_TRUE(rt.quarantine_thread(self, parked.id));
  EXPECT_THROW(rt.end_blocking(parked), ThreadQuarantined);

  ThreadContext& in_slow_path = rt.register_thread();
  ASSERT_TRUE(rt.quarantine_thread(self, in_slow_path.id));
  EXPECT_THROW(rt.check_self_quarantine(in_slow_path), ThreadQuarantined);

  // Non-quarantined threads pass the slow-path check untouched.
  rt.check_self_quarantine(self);
}

// --- ownership seizure ---------------------------------------------------------

TEST(Seizure, VictimOwnedStatesLandOnTheirUnlockedFlavors) {
  Runtime rt;
  ThreadContext& self = rt.register_thread();
  ThreadContext& victim = rt.register_thread();
  ASSERT_TRUE(rt.quarantine_thread(self, victim.id));

  ObjectMeta m;

  m.reset(StateWord::wr_ex_wlock(victim.id));
  EXPECT_TRUE(resilience::seize_object(self, m, victim.id));
  EXPECT_TRUE(testing::state_is(m, StateKind::kWrExPess, victim.id));

  m.reset(StateWord::wr_ex_rlock(victim.id));
  EXPECT_TRUE(resilience::seize_object(self, m, victim.id));
  EXPECT_TRUE(testing::state_is(m, StateKind::kWrExPess, victim.id));

  m.reset(StateWord::rd_ex_rlock(victim.id));
  EXPECT_TRUE(resilience::seize_object(self, m, victim.id));
  EXPECT_TRUE(testing::state_is(m, StateKind::kRdExPess, victim.id));

  // An abandoned coordination intermediate is replaced in a single CAS.
  m.reset(StateWord::intermediate(victim.id));
  EXPECT_TRUE(resilience::seize_object(self, m, victim.id));
  EXPECT_TRUE(testing::state_is(m, StateKind::kWrExPess, victim.id));

  // Under the pure optimistic tracker the landing must stay optimistic.
  m.reset(StateWord::intermediate(victim.id));
  EXPECT_TRUE(
      resilience::seize_object(self, m, victim.id, /*land_pessimistic=*/false));
  EXPECT_TRUE(testing::state_is(m, StateKind::kWrExOpt, victim.id));
}

TEST(Seizure, LeavesForeignAndUnlockedStatesAlone) {
  Runtime rt;
  ThreadContext& self = rt.register_thread();
  ThreadContext& victim = rt.register_thread();
  ThreadContext& other = rt.register_thread();
  ASSERT_TRUE(rt.quarantine_thread(self, victim.id));

  ObjectMeta m;
  // Unlocked states are accessible to every survivor — nothing to seize.
  m.reset(StateWord::wr_ex_pess(victim.id));
  EXPECT_FALSE(resilience::seize_object(self, m, victim.id));
  EXPECT_TRUE(testing::state_is(m, StateKind::kWrExPess, victim.id));
  m.reset(StateWord::wr_ex_opt(victim.id));
  EXPECT_FALSE(resilience::seize_object(self, m, victim.id));
  // Locks held by OTHER threads are not the victim's to lose.
  m.reset(StateWord::wr_ex_wlock(other.id));
  EXPECT_FALSE(resilience::seize_object(self, m, victim.id));
  EXPECT_TRUE(testing::state_is(m, StateKind::kWrExWLock, other.id));
  // Anonymous read shares are excluded from eager seizure (footnote 4).
  m.reset(StateWord::rd_sh_rlock(7, 2));
  EXPECT_FALSE(resilience::seize_object(self, m, victim.id));
}

TEST(QuarantineSweep, SweepsSealsAndNotifiesThroughTheRuntimeHook) {
  std::vector<ObjectMeta> metas(3);
  resilience::QuarantineSweep sweep(
      [&metas](const std::function<void(ObjectMeta&)>& fn) {
        for (ObjectMeta& m : metas) fn(m);
      });
  std::vector<ThreadId> sealed;
  std::vector<ThreadId> notified;
  sweep.set_seal([&](ThreadId v) { sealed.push_back(v); });
  sweep.set_notify([&](ThreadId v) { notified.push_back(v); });

  RuntimeConfig cfg;
  cfg.resilience.on_quarantine = std::ref(sweep);
  Runtime rt(cfg);
  ThreadContext& self = rt.register_thread();
  ThreadContext& victim = rt.register_thread();

  metas[0].reset(StateWord::wr_ex_wlock(victim.id));
  metas[1].reset(StateWord::wr_ex_opt(victim.id));  // unlocked: not seized
  metas[2].reset(StateWord::intermediate(victim.id));

  ASSERT_TRUE(rt.quarantine_thread(self, victim.id));
  EXPECT_EQ(sweep.sweeps(), 1u);
  EXPECT_EQ(sweep.objects_seized(), 2u);
  EXPECT_TRUE(testing::state_is(metas[0], StateKind::kWrExPess, victim.id));
  EXPECT_TRUE(testing::state_is(metas[1], StateKind::kWrExOpt, victim.id));
  EXPECT_TRUE(testing::state_is(metas[2], StateKind::kWrExPess, victim.id));
  ASSERT_EQ(sealed.size(), 1u);
  EXPECT_EQ(sealed[0], victim.id);
  ASSERT_EQ(notified.size(), 1u);
  EXPECT_EQ(notified[0], victim.id);
}

// --- degradation governor ------------------------------------------------------

TEST(Governor, StormClassification) {
  AdaptivePolicy policy;
  resilience::GovernorConfig gc;
  gc.storm_mean_cycles = 1000;
  gc.storm_restarts = 4;
  gc.min_samples = 8;
  resilience::ResilienceGovernor gov(&policy, gc);

  resilience::WindowSample calm;
  calm.coord_round_trips = 100;
  calm.explicit_round_trips = 100;
  calm.coord_cycles_total = 100 * 999;  // mean just below the bar
  EXPECT_FALSE(gov.is_storm(calm));

  resilience::WindowSample w = calm;
  w.quarantines = 1;
  EXPECT_TRUE(gov.is_storm(w));
  w = calm;
  w.lease_expiries = 1;
  EXPECT_TRUE(gov.is_storm(w));
  w = calm;
  w.region_restarts = 4;
  EXPECT_TRUE(gov.is_storm(w));
  w = calm;
  w.coord_cycles_total = 100 * 1000;  // mean hits the bar
  EXPECT_TRUE(gov.is_storm(w));
  // Below min_samples the mean is noise, not a storm.
  w.coord_round_trips = 4;
  w.explicit_round_trips = 4;
  w.coord_cycles_total = 4 * 100'000;
  EXPECT_FALSE(gov.is_storm(w));
  w = calm;
  w.pess_waits = 8;
  w.pess_wait_cycles_total = 8 * 1000;
  EXPECT_TRUE(gov.is_storm(w));
}

// Hysteresis (§6 Inertia analogue): consecutive storm windows degrade, a
// longer run of consecutive calm windows recovers, and an interrupting storm
// resets the calm run so a flickering storm cannot thrash the global mode.
TEST(Governor, DegradeAndRecoverWithHysteresis) {
  AdaptivePolicy policy;
  resilience::GovernorConfig gc;
  gc.storm_windows_to_degrade = 2;
  gc.calm_windows_to_recover = 3;
  resilience::ResilienceGovernor gov(&policy, gc);

  resilience::WindowSample storm;
  storm.quarantines = 1;
  const resilience::WindowSample calm;

  EXPECT_FALSE(gov.note_window(storm));  // 1 of 2
  EXPECT_FALSE(policy.degraded());
  EXPECT_TRUE(gov.note_window(storm));  // 2 of 2: flip down
  EXPECT_TRUE(policy.degraded());
  EXPECT_TRUE(gov.degraded());
  EXPECT_EQ(gov.flips(), 1u);

  // Degraded policy transfers every conflicting transition to pessimistic,
  // even ones the per-object profile would keep optimistic.
  ObjectMeta m;
  m.reset(StateWord::wr_ex_opt(0));
  EXPECT_TRUE(policy.to_pess_on_conflict(m, /*used_explicit=*/false));

  EXPECT_FALSE(gov.note_window(calm));  // 1 of 3
  EXPECT_FALSE(gov.note_window(calm));  // 2 of 3
  EXPECT_FALSE(gov.note_window(storm));  // calm run resets
  EXPECT_FALSE(gov.note_window(calm));
  EXPECT_FALSE(gov.note_window(calm));
  EXPECT_TRUE(gov.note_window(calm));  // 3 consecutive: flip back
  EXPECT_FALSE(policy.degraded());
  EXPECT_EQ(gov.flips(), 2u);
  EXPECT_EQ(gov.storm_windows_total(), 3u);
  EXPECT_EQ(gov.calm_windows_total(), 5u);
}

TEST(Governor, WindowFromSnapshotFoldsResilienceSignals) {
  telemetry::TraceSnapshot snap;
  telemetry::ThreadTrace t;
  t.tid = 0;
  auto ev = [](telemetry::EventKind k, std::uint64_t arg0, std::uint32_t arg1,
               std::uint32_t arg2) {
    telemetry::Event e;
    e.tsc = 1;
    e.arg0 = arg0;
    e.arg1 = arg1;
    e.arg2 = arg2;
    e.kind = static_cast<std::uint16_t>(k);
    return e;
  };
  t.events = {
      ev(telemetry::EventKind::kCoordRoundTrip, 100, 1, 0),  // explicit
      ev(telemetry::EventKind::kCoordRoundTrip, 50, 2, 1),   // implicit
      ev(telemetry::EventKind::kPessWait, 30, 5, 0),
      ev(telemetry::EventKind::kRegionRestart, 10, 0, 0),
      ev(telemetry::EventKind::kLeaseExpired, 3, 7, 128),
      ev(telemetry::EventKind::kQuarantine, 3, 9, 1),
  };
  snap.threads.push_back(std::move(t));

  const resilience::WindowSample w = resilience::window_from_snapshot(snap);
  EXPECT_EQ(w.coord_round_trips, 2u);
  EXPECT_EQ(w.explicit_round_trips, 1u);
  EXPECT_EQ(w.coord_cycles_total, 150u);
  EXPECT_EQ(w.pess_waits, 1u);
  EXPECT_EQ(w.pess_wait_cycles_total, 30u);
  EXPECT_EQ(w.region_restarts, 1u);
  EXPECT_EQ(w.lease_expiries, 1u);
  EXPECT_EQ(w.quarantines, 1u);

  AdaptivePolicy policy;
  resilience::ResilienceGovernor gov(&policy);
  EXPECT_TRUE(gov.is_storm(w));  // the quarantine alone makes it a storm
}

// --- recorder sealing and stream hardening ------------------------------------

TEST(RecorderSeal, QuarantineFreezesTheVictimLogAndDropsLateAppends) {
  Runtime rt;
  ThreadContext& self = rt.register_thread();
  ThreadContext& victim = rt.register_thread();
  DependenceRecorder rec(rt);
  rec.attach_thread(victim);

  victim.point_index = 1;
  rec.edge(victim, self.id, 1);
  ASSERT_EQ(rec.log(victim.id).events.size(), 1u);

  rec.on_quarantine(victim.id);
  EXPECT_TRUE(rec.sealed(victim.id));
  EXPECT_FALSE(rec.sealed(self.id));

  // A not-yet-parked victim racing past the seal appends nothing, through
  // either the edge sink or the response-log hook.
  victim.point_index = 2;
  rec.edge(victim, self.id, 2);
  victim.run_resp_log_hook();
  EXPECT_EQ(rec.log(victim.id).events.size(), 1u);

  const Recording r = rec.take_recording(2);
  EXPECT_TRUE(validate_recording(r).ok());
  EXPECT_TRUE(analysis::lint_recording(r).ok());
}

// Sealing with a stream writer attached flushes the victim's frozen log to
// disk at a v2 chunk boundary immediately: even if the degraded run then
// crashes (writer destroyed without finish()), the victim's events are in
// the salvageable prefix.
TEST(RecorderSeal, SealedChunksSurviveACrashAfterQuarantine) {
  const std::string path = temp_path("ht_resilience_seal_crash.bin");
  Runtime rt;
  ThreadContext& self = rt.register_thread();
  ThreadContext& victim = rt.register_thread();
  {
    DependenceRecorder rec(rt);
    RecordingStreamWriter writer(path, 2);
    rec.set_stream_writer(&writer);
    victim.point_index = 1;
    rec.edge(victim, self.id, 3);
    victim.point_index = 2;
    rec.edge(victim, self.id, 5);
    rec.on_quarantine(victim.id);
    // Crash: no finish_stream, writer destroyed trailer-less.
  }
  const RecordingLoadResult r = load_recording_ex(path);
  EXPECT_NE(r.error, RecordingLoadError::kNone);  // partial file
  ASSERT_TRUE(r.recording.has_value());
  EXPECT_TRUE(r.partial);
  ASSERT_EQ(r.recording->threads.size(), 2u);
  const ThreadLog& log = r.recording->threads[victim.id];
  ASSERT_EQ(log.events.size(), 2u);
  EXPECT_EQ(log.events[1].value, 5u);
  EXPECT_TRUE(analysis::lint_recording(*r.recording, /*salvaged=*/true).ok());
  std::remove(path.c_str());
}

// Transient injected write tears are retried and the stream completes; the
// io_failure_cap models a device that recovers after a bounded error burst.
TEST(RecordingRetry, TransientShortWritesAreRetriedToCompletion) {
  const std::string path = temp_path("ht_resilience_retry.bin");
  FaultConfig fc;
  fc.seed = 3;
  fc.enable(FaultSite::kIoShortWrite, 100'000);  // every probe fires...
  fc.io_failure_cap = 2;                         // ...but only twice in total
  FaultInjector inj(fc);

  RecordingStreamWriter w(path, 1, &inj);
  std::vector<LogEvent> events;
  for (std::uint64_t i = 1; i <= 10; ++i) {
    events.push_back(LogEvent{i, LogEventType::kResponse, kNoThread, i});
  }
  EXPECT_TRUE(w.append(0, events.data(), events.size()));
  EXPECT_TRUE(w.finish());
  EXPECT_TRUE(w.ok());
  EXPECT_GE(inj.fired(FaultSite::kIoShortWrite), 1u);

  const RecordingLoadResult r = load_recording_ex(path);
  EXPECT_TRUE(r.complete()) << recording_load_error_name(r.error);
  ASSERT_TRUE(r.recording.has_value());
  EXPECT_EQ(r.recording->threads.at(0).events.size(), 10u);
  std::remove(path.c_str());
}

// With retrying disabled (the pre-§11 one-shot semantics) the same fault
// schedule latches the writer failed on the first tear.
TEST(RecordingRetry, SingleAttemptLatchesOnFirstTear) {
  const std::string path = temp_path("ht_resilience_noretry.bin");
  // The header is written by the constructor (before retrying can be
  // disabled), so search the seeded schedules for one where the header's
  // probe stays quiet and the first torn write lands on an append — there
  // the single-attempt writer must latch failed immediately.
  bool latched = false;
  for (std::uint64_t seed = 1; seed <= 100 && !latched; ++seed) {
    FaultConfig fc;
    fc.seed = seed;
    fc.enable(FaultSite::kIoShortWrite, 30'000);
    fc.io_failure_cap = 1;
    FaultInjector inj(fc);
    RecordingStreamWriter w(path, 1, &inj);
    if (inj.fired(FaultSite::kIoShortWrite) > 0) continue;  // header tore
    ASSERT_TRUE(w.ok());
    w.set_max_write_attempts(1);
    LogEvent e{1, LogEventType::kResponse, kNoThread, 1};
    if (!w.append(0, &e, 1)) {
      latched = true;
      EXPECT_FALSE(w.ok());
      EXPECT_FALSE(w.append(0, &e, 1));  // latched: everything after no-ops
      EXPECT_FALSE(w.finish());
    }
  }
  EXPECT_TRUE(latched) << "no schedule tore an append within 100 seeds";
  std::remove(path.c_str());
}

// --- acceptance: a stuck thread cannot take the run down -----------------------

struct StuckThreadRun {
  RuntimeConfig cfg;
  std::vector<TrackedVar<std::uint64_t>> vars{2};
  resilience::QuarantineSweep sweep;

  StuckThreadRun(WatchdogConfig::OnStall policy, std::uint64_t stall_epochs) {
    cfg.watchdog.on_stall = policy;
    cfg.watchdog.stall_epochs = stall_epochs;
    cfg.watchdog.sink = [](const CoordStallDiagnostic&) {};
    sweep.set_enumerator([this](const std::function<void(ObjectMeta&)>& fn) {
      for (TrackedVar<std::uint64_t>& v : vars) fn(v.meta());
    });
    cfg.resilience.on_quarantine = std::ref(sweep);
  }
};

// The victim write-locks a pessimistic object (deferred unlock) and then
// never reaches a safe point again. Under kQuarantine the survivor's
// contended store stalls, the watchdog quarantines the victim, the sweep
// seizes the lock, and the run completes with a loadable, lint-clean
// recording whose victim log is sealed.
TEST(SelfHealing, StuckThreadIsQuarantinedAndTheRunCompletes) {
  StuckThreadRun run(WatchdogConfig::OnStall::kQuarantine,
                     /*stall_epochs=*/200);
  Runtime rt(run.cfg);
  DependenceRecorder rec(rt);
  run.sweep.set_seal([&rec](ThreadId v) { rec.on_quarantine(v); });
  const std::string path = temp_path("ht_resilience_stuck.bin");
  RecordingStreamWriter writer(path, 2);
  rec.set_stream_writer(&writer);
  HybridTracker<false, DependenceRecorder> trk(rt, HybridConfig{}, &rec);

  ThreadContext& self = rt.register_thread();
  trk.attach_thread(self);
  rec.attach_thread(self);

  std::atomic<ThreadId> victim_id{kNoThread};
  std::atomic<bool> locked{false};
  std::atomic<bool> stop{false};
  std::atomic<bool> victim_parked{false};
  std::thread victim([&] {
    ThreadContext& ctx = rt.register_thread();
    trk.attach_thread(ctx);
    rec.attach_thread(ctx);
    victim_id.store(ctx.id);
    run.vars[0].init(trk, ctx);
    run.vars[0].meta().reset(StateWord::wr_ex_pess(ctx.id));
    run.vars[0].store(trk, ctx, 7);  // write lock, unlock deferred forever
    locked.store(true);
    while (!stop.load(std::memory_order_relaxed)) std::this_thread::yield();
    // First safe point after the storm: the victim observes its quarantine
    // and parks instead of flushing the (already seized) lock.
    try {
      rt.poll(ctx);
    } catch (const ThreadQuarantined& q) {
      EXPECT_EQ(q.tid, ctx.id);
      victim_parked.store(true);
    }
  });
  while (!locked.load()) std::this_thread::yield();
  ASSERT_TRUE(testing::state_is(run.vars[0].meta(), StateKind::kWrExWLock,
                                victim_id.load()));

  run.vars[1].init(trk, self);
  run.vars[0].store(trk, self, 9);  // contends on the stuck holder's lock
  EXPECT_EQ(run.vars[0].load(trk, self), 9u);

  EXPECT_EQ(rt.quarantined_count(), 1u);
  EXPECT_TRUE(rt.thread_quarantined(victim_id.load()));
  EXPECT_EQ(run.sweep.sweeps(), 1u);
  EXPECT_GE(run.sweep.objects_seized(), 1u);
  EXPECT_TRUE(rec.sealed(victim_id.load()));

  stop.store(true);
  victim.join();
  EXPECT_TRUE(victim_parked.load());

  rt.psro(self);  // flush the survivor's own deferred locks
  rt.unregister_thread(self);

  EXPECT_TRUE(rec.finish_stream(2));
  EXPECT_TRUE(writer.ok());
  const Recording recd = rec.take_recording(2);
  EXPECT_TRUE(validate_recording(recd).ok());
  const analysis::LintResult lint = analysis::lint_recording(recd);
  EXPECT_TRUE(lint.ok()) << lint.to_string();
  const FileCheckResult file = check_recording_file(path);
  EXPECT_TRUE(file.ok()) << file.to_string();
  std::remove(path.c_str());
}

// Negative control: the identical stuck-thread scenario without the healing
// policy fail-fasts instead of completing — the quarantine path is what
// saves the run, not luck.
TEST(SelfHealing, WithoutQuarantineTheSameRunFailsFast) {
  StuckThreadRun run(WatchdogConfig::OnStall::kFailFast,
                     /*stall_epochs=*/200);
  Runtime rt(run.cfg);
  HybridTracker<> trk(rt, HybridConfig{});

  ThreadContext& self = rt.register_thread();
  trk.attach_thread(self);

  std::atomic<ThreadId> victim_id{kNoThread};
  std::atomic<bool> locked{false};
  std::atomic<bool> stop{false};
  std::thread victim([&] {
    ThreadContext& ctx = rt.register_thread();
    trk.attach_thread(ctx);
    victim_id.store(ctx.id);
    run.vars[0].init(trk, ctx);
    run.vars[0].meta().reset(StateWord::wr_ex_pess(ctx.id));
    run.vars[0].store(trk, ctx, 7);
    locked.store(true);
    while (!stop.load(std::memory_order_relaxed)) std::this_thread::yield();
    rt.psro(ctx);  // revive; release the lock normally
    rt.unregister_thread(ctx);
  });
  while (!locked.load()) std::this_thread::yield();

  EXPECT_THROW(run.vars[0].store(trk, self, 9), CoordinationStalled);
  EXPECT_EQ(rt.quarantined_count(), 0u);

  stop.store(true);
  victim.join();
  rt.unregister_thread(self);
}

}  // namespace
}  // namespace ht
