// Runtime substrate tests: registration, safe points, PSRO release-counter
// discipline, the coordination protocol (explicit / implicit / mutual), and
// blocking semantics.
#include "runtime/runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "test_util.hpp"

namespace ht {
namespace {

using testing::BlockedThread;

TEST(ThreadRegistry, AssignsDenseIds) {
  Runtime rt;
  ThreadContext& a = rt.register_thread();
  ThreadContext& b = rt.register_thread();
  EXPECT_EQ(a.id, 0u);
  EXPECT_EQ(b.id, 1u);
  EXPECT_EQ(rt.registry().high_water(), 2u);
  EXPECT_EQ(&rt.registry().context(1), &b);
}

TEST(ThreadRegistry, FastPathWordsMatchIds) {
  Runtime rt;
  ThreadContext& a = rt.register_thread();
  EXPECT_EQ(a.fast_wr_ex_opt, StateWord::wr_ex_opt(a.id).raw());
  EXPECT_EQ(a.fast_rd_ex_opt, StateWord::rd_ex_opt(a.id).raw());
}

TEST(Runtime, RdShCounterIsMonotonic) {
  Runtime rt;
  const std::uint32_t a = rt.next_rd_sh_counter();
  const std::uint32_t b = rt.next_rd_sh_counter();
  EXPECT_LT(a, b);
  EXPECT_GE(a, 1u);  // fresh threads (rd_sh_count == 0) must see every c as new
}

TEST(Runtime, PsroBumpsReleaseCounterAndPointIndex) {
  Runtime rt;
  ThreadContext& ctx = rt.register_thread();
  const std::uint64_t p0 = ctx.point_index;
  rt.psro(ctx);
  rt.psro(ctx);
  EXPECT_EQ(ctx.release_counter_relaxed(), 2u);
  EXPECT_EQ(ctx.point_index, p0 + 2);
  EXPECT_EQ(ctx.stats.psros, 2u);
}

TEST(Runtime, PollRespondsToPendingRequests) {
  Runtime rt;
  ThreadContext& owner = rt.register_thread();
  ThreadContext& requester = rt.register_thread();

  // The requester's round trip completes once the owner polls.
  std::atomic<bool> done{false};
  std::thread req([&] {
    const auto r = rt.coordinate(requester, owner.id);
    EXPECT_FALSE(r.implicit);
    EXPECT_GE(r.src_release, 1u);  // responding bumped the counter
    done.store(true);
  });
  while (!done.load()) {
    rt.poll(owner);
    std::this_thread::yield();
  }
  req.join();
  EXPECT_GE(owner.stats.responding_safepoints, 1u);
  EXPECT_GE(owner.release_counter_relaxed(), 1u);
}

TEST(Runtime, ImplicitCoordinationWithBlockedThread) {
  Runtime rt;
  ThreadContext& requester = rt.register_thread();
  BlockedThread blocked(rt);

  const auto r = rt.coordinate(requester, blocked.ctx().id);
  EXPECT_TRUE(r.implicit);
  // Blocking flushed and bumped before parking.
  EXPECT_GE(r.src_release, 1u);
}

TEST(Runtime, ImplicitCoordinationBumpsEpochNotState) {
  Runtime rt;
  ThreadContext& requester = rt.register_thread();
  BlockedThread blocked(rt);

  const std::uint64_t s0 =
      blocked.ctx().owner_side.status.load(std::memory_order_relaxed);
  (void)rt.coordinate(requester, blocked.ctx().id);
  const std::uint64_t s1 =
      blocked.ctx().owner_side.status.load(std::memory_order_relaxed);
  EXPECT_TRUE(ThreadStatus::is_blocked(s1));
  EXPECT_EQ(ThreadStatus::epoch(s1), ThreadStatus::epoch(s0) + 1);
}

TEST(Runtime, EndBlockingSurvivesConcurrentEpochBumps) {
  Runtime rt;
  ThreadContext& requester = rt.register_thread();
  BlockedThread blocked(rt);
  for (int i = 0; i < 5; ++i) (void)rt.coordinate(requester, blocked.ctx().id);
  blocked.wake();  // must not assert or lose the RUNNING transition
  const std::uint64_t s =
      blocked.ctx().owner_side.status.load(std::memory_order_relaxed);
  EXPECT_FALSE(ThreadStatus::is_blocked(s));
}

TEST(Runtime, UnregisteredThreadAnswersImplicitly) {
  Runtime rt;
  ThreadContext& requester = rt.register_thread();
  ThreadContext& leaver = rt.register_thread();
  rt.unregister_thread(leaver);
  const auto r = rt.coordinate(requester, leaver.id);
  EXPECT_TRUE(r.implicit);
  EXPECT_GE(r.src_release, 1u);  // exit bump
}

TEST(Runtime, MutualExplicitCoordinationDoesNotDeadlock) {
  // Two running threads coordinate with each other simultaneously; each must
  // answer the other from within its own wait loop (Fig 1 line 18).
  Runtime rt;
  std::atomic<ThreadContext*> ctxs[2] = {nullptr, nullptr};
  std::atomic<int> ready{0};
  std::thread a([&] {
    ThreadContext& me = rt.register_thread();
    ctxs[0].store(&me);
    ready.fetch_add(1);
    while (ready.load() < 2) std::this_thread::yield();
    (void)rt.coordinate(me, ctxs[1].load()->id);
    rt.unregister_thread(me);
  });
  std::thread b([&] {
    ThreadContext& me = rt.register_thread();
    ctxs[1].store(&me);
    ready.fetch_add(1);
    while (ready.load() < 2) std::this_thread::yield();
    (void)rt.coordinate(me, ctxs[0].load()->id);
    rt.unregister_thread(me);
  });
  a.join();
  b.join();
  SUCCEED();
}

TEST(Runtime, CoordinateAllOthersCoversEveryRegisteredThread) {
  Runtime rt;
  ThreadContext& self = rt.register_thread();
  BlockedThread b1(rt), b2(rt), b3(rt);
  EXPECT_FALSE(rt.coordinate_all_others(self));  // all implicit
  EXPECT_EQ(self.stats.coordination_rounds, 3u);
}

TEST(Runtime, RespondRunsHooksInOrder) {
  Runtime rt;
  ThreadContext& owner = rt.register_thread();
  ThreadContext& requester = rt.register_thread();

  // Order contract: flush before the release-counter bump; the response-log
  // hook after the bump.
  static thread_local std::vector<std::string> trace;
  trace.clear();
  owner.flush_self = &owner;
  owner.flush_fn = [](void*, ThreadContext& c) {
    trace.push_back("flush@" + std::to_string(c.release_counter_relaxed()));
  };
  owner.resp_log_self = &owner;
  owner.resp_log_fn = [](void*, ThreadContext& c) {
    trace.push_back("log@" + std::to_string(c.release_counter_relaxed()));
  };

  std::atomic<bool> done{false};
  std::thread req([&] {
    (void)rt.coordinate(requester, owner.id);
    done.store(true);
  });
  // Drive the owner from this thread; hooks run on the owner's thread (this
  // one), so the thread_local trace is visible here.
  while (!done.load()) {
    rt.poll(owner);
    std::this_thread::yield();
  }
  req.join();
  ASSERT_GE(trace.size(), 2u);
  EXPECT_EQ(trace[0], "flush@0");  // flush before bump
  EXPECT_EQ(trace[1], "log@1");    // log after bump
}

TEST(Runtime, BlockingIsARespondingSafePoint) {
  Runtime rt;
  ThreadContext& ctx = rt.register_thread();
  int flushes = 0;
  ctx.flush_self = &flushes;
  ctx.flush_fn = [](void* self, ThreadContext&) {
    ++*static_cast<int*>(self);
  };
  rt.begin_blocking(ctx);
  EXPECT_EQ(flushes, 1);
  EXPECT_EQ(ctx.release_counter_relaxed(), 1u);
  rt.end_blocking(ctx);
}

TEST(Runtime, PsroRejectedInsideRegion) {
  Runtime rt;
  ThreadContext& ctx = rt.register_thread();
  ctx.in_region = true;
  EXPECT_DEATH(rt.psro(ctx), "PSRO inside an SBRS region");
  ctx.in_region = false;
}

}  // namespace
}  // namespace ht
