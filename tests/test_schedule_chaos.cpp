// Chaos programs under the DETERMINISTIC scheduler: the same randomized op
// mixes the wall-clock chaos suite (test_chaos.cpp) runs nondeterministically
// are rebuilt as schedule::Programs and fuzzed with fixed seeds, optionally
// with fault injection armed. Unlike the wall-clock suite, a failure here is
// a hard artifact: the assert prints the program seed plus the schedule trace,
// and `tools/schedule_explore --replay` reproduces it bit-identically.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "faultinject/fault_injector.hpp"
#include "schedule/explorer.hpp"
#include "schedule/program.hpp"
#include "schedule/virtual_scheduler.hpp"

namespace ht::schedule {
namespace {

struct ChaosSchedCase {
  std::uint64_t program_seed;
  Family family;
  int threads;
  int objects;
  int ops;
  bool faults;
};

std::string case_name(const ::testing::TestParamInfo<ChaosSchedCase>& info) {
  const ChaosSchedCase& c = info.param;
  return std::string(family_name(c.family)) + "_s" +
         std::to_string(c.program_seed) + (c.faults ? "_faulted" : "");
}

class ChaosSchedP : public ::testing::TestWithParam<ChaosSchedCase> {};

// Seeded schedule fuzzing over a seeded chaos program: every explored
// schedule must terminate, stay quiescent, and keep both transition oracles
// silent. On failure the violation carries everything needed to reproduce:
// the derived schedule seed and the full slot trace.
TEST_P(ChaosSchedP, FuzzedChaosSchedulesStayClean) {
  const ChaosSchedCase& c = GetParam();
  const Program prog =
      make_chaos_program(c.program_seed, c.threads, c.objects, c.ops);

  Explorer ex(c.family, c.threads);
  FaultConfig faults;
  if (c.faults) {
    faults.seed = c.program_seed;
    faults.stall_polls = 8;  // keep stalls short: schedules are only ~30 steps
    faults.enable(FaultSite::kPollSkip, 20'000)
        .enable(FaultSite::kCoordStall, 5'000);
    ex.run_config().faults = &faults;
  }

  ExploreOutcome out = ex.explore_fuzz(prog, /*seed=*/c.program_seed * 31 + 7,
                                       /*schedules=*/60,
                                       /*preemption_bound=*/3);
  if (out.violation) {
    ADD_FAILURE() << "chaos program seed " << c.program_seed << " ("
                  << c.threads << "t/" << c.objects << "o/" << c.ops
                  << " ops, " << family_name(c.family)
                  << (c.faults ? ", faults" : "") << ")\n"
                  << out.violation->to_string();
  }
  EXPECT_EQ(out.stats.schedules, 60u);
  EXPECT_EQ(out.stats.deadlocks, 0u);
  EXPECT_EQ(out.stats.truncated, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    FixedSeeds, ChaosSchedP,
    ::testing::Values(
        ChaosSchedCase{11, Family::kHybrid, 3, 4, 10, false},
        ChaosSchedCase{12, Family::kHybrid, 2, 3, 12, false},
        ChaosSchedCase{13, Family::kHybrid, 3, 3, 8, true},
        ChaosSchedCase{21, Family::kOptimistic, 3, 4, 10, false},
        ChaosSchedCase{22, Family::kOptimistic, 2, 2, 12, true},
        ChaosSchedCase{31, Family::kPessimistic, 3, 4, 10, false},
        ChaosSchedCase{32, Family::kPessimistic, 2, 3, 12, true}),
    case_name);

// Same seed, same schedule, same everything: the whole point of the virtual
// scheduler is that a chaos failure is reproducible. Two independent runs
// under the same fuzz seed must take the same trace and hash to the same
// execution digest — with and without fault injection in the loop.
TEST(ChaosSchedDeterminism, SameSeedSameDigest) {
  const Program prog = make_chaos_program(/*seed=*/77, /*nthreads=*/3,
                                          /*objects=*/4, /*ops_per_thread=*/10);
  for (bool with_faults : {false, true}) {
    Explorer ex(Family::kHybrid, prog.nthreads());
    FaultConfig faults;
    if (with_faults) {
      faults.stall_polls = 8;
      faults.enable(FaultSite::kPollSkip, 20'000);
      ex.run_config().faults = &faults;
    }

    FuzzStrategy first(/*seed=*/424242, /*preemption_bound=*/3);
    const RunResult a = ex.run_once(prog, first);
    FuzzStrategy second(/*seed=*/424242, /*preemption_bound=*/3);
    const RunResult b = ex.run_once(prog, second);

    ASSERT_TRUE(a.complete()) << run_status_name(a.status);
    EXPECT_EQ(a.trace, b.trace) << "faults=" << with_faults;
    EXPECT_EQ(a.digest, b.digest) << "faults=" << with_faults;
    if (with_faults) {
      EXPECT_EQ(a.faults_fired, b.faults_fired);
    }

    // And a trace-only replay (what the CLI's --replay mode does) lands on
    // the identical digest — the trace alone pins the execution.
    const RunResult r = ex.replay(prog, a.trace);
    EXPECT_FALSE(r.replay_diverged) << "faults=" << with_faults;
    EXPECT_EQ(r.digest, a.digest) << "faults=" << with_faults;
  }
}

// A recorded trace pins the execution even across strategies: an exhaustive
// DFS schedule replayed through ReplayStrategy reproduces its digest.
TEST(ChaosSchedDeterminism, DfsScheduleReplaysBitIdentically) {
  const Program* prog = find_builtin("deferred-unlock");
  ASSERT_NE(prog, nullptr);

  Explorer ex(Family::kHybrid, prog->nthreads());
  RunResult sample;
  ex.check_policy().extra = [&](const RunResult& r) -> std::string {
    if (sample.trace.empty()) sample = r;  // keep the first full run
    return "";
  };
  ExploreOutcome out = ex.explore_exhaustive(*prog, 4);
  ASSERT_FALSE(out.violation.has_value()) << out.violation->to_string();
  ASSERT_FALSE(sample.trace.empty());

  const RunResult r = ex.replay(*prog, sample.trace);
  EXPECT_FALSE(r.replay_diverged);
  EXPECT_EQ(r.trace, sample.trace);
  EXPECT_EQ(r.digest, sample.digest);
  EXPECT_EQ(r.final_values, sample.final_values);
}

}  // namespace
}  // namespace ht::schedule
