// Exhaustive interleaving exploration of the tracker state machines: every
// builtin Program (program.hpp) is driven through ALL schedules for all three
// real tracker families, with the full oracle stack armed — the transition
// StatePairOracle, the HT_CHECK_TRANSITIONS delta, final-state quiescence,
// and (for the lock-synchronized programs) the vector-clock race detector.
// Covers the Table 3 corners the structured tests reach only probabilistically:
// deferred unlocking racing a taker, read-share formation/collapse under both
// lock modes, and fall-back coordination against a blocked owner.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "metadata/state_word.hpp"
#include "schedule/explorer.hpp"
#include "schedule/program.hpp"

namespace ht::schedule {
namespace {

constexpr std::uint64_t kBudget = 4096;  // > largest tree (rdsh-fan, 761)

struct ExhaustiveCase {
  Family family;
  std::string program;
};

std::string case_name(const ::testing::TestParamInfo<ExhaustiveCase>& info) {
  std::string n = std::string(family_name(info.param.family)) + "_" +
                  info.param.program;
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

class ExhaustiveP : public ::testing::TestWithParam<ExhaustiveCase> {};

// Every interleaving of every builtin program terminates, ends quiescent,
// and never produces an illegal state-kind succession or a shadow-checker
// violation. The tree must be fully explored within budget (no truncation,
// no deadlock).
TEST_P(ExhaustiveP, AllInterleavingsSatisfyOracles) {
  const ExhaustiveCase& c = GetParam();
  const Program* prog = find_builtin(c.program);
  ASSERT_NE(prog, nullptr) << c.program;

  Explorer ex(c.family, prog->nthreads());
  ExploreOutcome out = ex.explore_exhaustive(*prog, kBudget);
  EXPECT_FALSE(out.violation.has_value())
      << out.violation->to_string();
  EXPECT_TRUE(out.stats.complete) << "tree not exhausted within budget";
  EXPECT_GT(out.stats.schedules, 1u);
  EXPECT_EQ(out.stats.deadlocks, 0u);
  EXPECT_EQ(out.stats.truncated, 0u);
}

std::vector<ExhaustiveCase> all_cases() {
  std::vector<ExhaustiveCase> cases;
  for (Family f :
       {Family::kPessimistic, Family::kOptimistic, Family::kHybrid}) {
    for (const NamedProgram& np : builtin_programs()) {
      cases.push_back({f, np.name});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ExhaustiveP,
                         ::testing::ValuesIn(all_cases()), case_name);

class SchedExhaustive : public ::testing::TestWithParam<Family> {};

// Lock-synchronized increments are data-race-free by construction, so in
// EVERY interleaving the vector-clock oracle must stay silent and the final
// value must be exactly one increment per thread (lost updates would mean
// the virtual scheduler let two threads into the critical section).
TEST_P(SchedExhaustive, LockedIncIsRaceFreeAndLosesNoUpdate) {
  const Program* prog = find_builtin("locked-inc");
  ASSERT_NE(prog, nullptr);

  Explorer ex(GetParam(), prog->nthreads());
  ex.run_config().race_detect = true;
  ex.check_policy().require_zero_races = true;
  ex.check_policy().extra = [](const RunResult& r) -> std::string {
    if (r.final_values.at(0) != 2) {
      return "lost update: final value " +
             std::to_string(r.final_values.at(0)) + ", want 2";
    }
    return "";
  };
  ExploreOutcome out = ex.explore_exhaustive(*prog, kBudget);
  EXPECT_FALSE(out.violation.has_value()) << out.violation->to_string();
  EXPECT_TRUE(out.stats.complete);
}

// The unlocked twin must trip the race detector in at least one interleaving
// (negative control: proves the race oracle is live, not vacuously green).
TEST_P(SchedExhaustive, RacyIncTripsTheRaceDetectorSomewhere) {
  const Program* prog = find_builtin("racy-inc");
  ASSERT_NE(prog, nullptr);

  Explorer ex(GetParam(), prog->nthreads());
  ex.run_config().race_detect = true;
  std::uint64_t racy_schedules = 0;
  ex.check_policy().extra = [&](const RunResult& r) -> std::string {
    if (r.races.total() > 0) ++racy_schedules;
    return "";
  };
  ExploreOutcome out = ex.explore_exhaustive(*prog, kBudget);
  EXPECT_FALSE(out.violation.has_value()) << out.violation->to_string();
  EXPECT_TRUE(out.stats.complete);
  EXPECT_GT(racy_schedules, 0u)
      << "no interleaving raced — the detector oracle is dead";
}

// Sleep-set soundness: pruning may only skip Mazurkiewicz-EQUIVALENT
// reorderings, so the set of reachable OUTCOMES (final object states plus
// final values — not execution digests, which hash the trace and therefore
// distinguish equivalent schedules) must match the unpruned full tree, in
// no more executions.
TEST_P(SchedExhaustive, SleepSetPruningPreservesReachableOutcomes) {
  for (const char* name : {"ww-conflict", "deferred-unlock", "locked-inc"}) {
    const Program* prog = find_builtin(name);
    ASSERT_NE(prog, nullptr) << name;

    auto outcome_key = [](const RunResult& r) {
      std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
      auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
          h = (h ^ ((v >> (8 * i)) & 0xff)) * 1099511628211ULL;
        }
      };
      for (const StateWord& s : r.final_states) mix(s.raw());
      for (std::uint64_t v : r.final_values) mix(v);
      return h;
    };

    auto outcome_set = [&](bool sleep_sets, std::uint64_t* schedules) {
      Explorer ex(GetParam(), prog->nthreads());
      std::set<std::uint64_t> outcomes;
      ex.check_policy().extra = [&](const RunResult& r) -> std::string {
        outcomes.insert(outcome_key(r));
        return "";
      };
      ExploreOutcome out = ex.explore_exhaustive(*prog, kBudget, sleep_sets);
      EXPECT_FALSE(out.violation.has_value())
          << name << ": " << out.violation->to_string();
      EXPECT_TRUE(out.stats.complete) << name;
      *schedules = out.stats.schedules;
      return outcomes;
    };

    std::uint64_t pruned_scheds = 0;
    std::uint64_t full_scheds = 0;
    const std::set<std::uint64_t> pruned = outcome_set(true, &pruned_scheds);
    const std::set<std::uint64_t> full = outcome_set(false, &full_scheds);
    EXPECT_EQ(pruned, full) << name << ": pruning changed reachable outcomes";
    EXPECT_LE(pruned_scheds, full_scheds) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, SchedExhaustive,
    ::testing::Values(Family::kPessimistic, Family::kOptimistic,
                      Family::kHybrid),
    [](const ::testing::TestParamInfo<Family>& param) {
      return std::string(family_name(param.param));
    });

using KindEdge = std::pair<StateKind, StateKind>;

std::set<KindEdge> observed_edges(Family f, const char* name) {
  const Program* prog = find_builtin(name);
  EXPECT_NE(prog, nullptr) << name;
  Explorer ex(f, prog->nthreads());
  std::set<KindEdge> edges;
  ex.run_config().on_state_change = [&](const StateChange& c) {
    edges.insert({c.from.kind(), c.to.kind()});
  };
  ExploreOutcome out = ex.explore_exhaustive(*prog, kBudget);
  EXPECT_FALSE(out.violation.has_value()) << out.violation->to_string();
  return edges;
}

// Table 3 deferred-unlock corner (§3.1): under the hybrid tracker the
// write-lock acquisition and its later PSRO-flush release must both be
// visible across the exploration, in both directions.
TEST(ScheduleTable3, HybridDeferredUnlockExercisesLockFlushEdges) {
  const std::set<KindEdge> edges =
      observed_edges(Family::kHybrid, "deferred-unlock");
  EXPECT_TRUE(edges.count({StateKind::kWrExPess, StateKind::kWrExWLock}))
      << "no schedule acquired the deferred write lock";
  EXPECT_TRUE(edges.count({StateKind::kWrExWLock, StateKind::kWrExPess}))
      << "no schedule flushed the deferred write lock";
}

// Table 3 read-lock corner: pessimistic reads of a shared object form
// RdShRLock (two holders) and the subsequent write waits the holders out —
// the share must both form and collapse somewhere in the tree.
TEST(ScheduleTable3, PessimisticRdShRLockFormsAndCollapses) {
  const std::set<KindEdge> edges =
      observed_edges(Family::kPessimistic, "rdsh-rlock");
  bool forms = false;
  bool collapses = false;
  for (const KindEdge& e : edges) {
    if (e.second == StateKind::kRdShRLock || e.second == StateKind::kRdShPess) {
      forms = true;
    }
    if ((e.first == StateKind::kRdShRLock ||
         e.first == StateKind::kRdShPess) &&
        e.second != StateKind::kRdShRLock &&
        e.second != StateKind::kRdShPess) {
      collapses = true;
    }
  }
  EXPECT_TRUE(forms) << "read share never formed";
  EXPECT_TRUE(collapses) << "read share never collapsed back";
}

// Fall-back coordination corner: with the owner parked in a blocking window,
// conflicting accesses still retarget ownership — the exploration must see
// optimistic coordination (through Int) under the hybrid tracker.
TEST(ScheduleTable3, HybridBlockedOwnerStillCoordinates) {
  const std::set<KindEdge> edges =
      observed_edges(Family::kHybrid, "blocked-owner");
  bool through_int = false;
  for (const KindEdge& e : edges) {
    if (e.first == StateKind::kInt || e.second == StateKind::kInt) {
      through_int = true;
    }
  }
  EXPECT_TRUE(through_int)
      << "no coordination (explicit or fall-back) observed";
}

}  // namespace
}  // namespace ht::schedule
