// Mutation testing for the exploration harness itself: deliberately declare
// one LEGAL state-kind succession illegal in the StatePairOracle and assert
// the explorer finds a schedule exhibiting it within a small budget. This is
// the "does the checker check anything" test — a harness whose oracles can
// never fire would pass every other suite vacuously. Also proves the recorded
// violation trace is actionable: replaying it reproduces the same violation.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "metadata/state_word.hpp"
#include "schedule/explorer.hpp"
#include "schedule/program.hpp"

namespace ht::schedule {
namespace {

// The explorer must flag the mutant within this many executions. The edges
// below appear already in the first few sequential schedules, so the real
// margin is large; the bound exists to keep the test meaningful.
constexpr std::uint64_t kDetectionBudget = 64;

struct MutationCase {
  Family family;
  const char* program;
  // A pair that IS legal and IS exercised by `program` (verified by the
  // exhaustive suite); forbidding it must produce a violation.
  StateKind from;
  StateKind to;
};

std::string case_name(const ::testing::TestParamInfo<MutationCase>& info) {
  std::string n = std::string(family_name(info.param.family)) + "_" +
                  state_kind_name(info.param.from) + "_to_" +
                  state_kind_name(info.param.to);
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

class MutationP : public ::testing::TestWithParam<MutationCase> {};

TEST_P(MutationP, ForbiddenLegalEdgeIsDetectedWithinBudget) {
  const MutationCase& c = GetParam();
  const Program* prog = find_builtin(c.program);
  ASSERT_NE(prog, nullptr) << c.program;

  // Sanity: with the pristine oracle the program is clean, so any violation
  // below is attributable to the mutation alone.
  {
    Explorer clean(c.family, prog->nthreads());
    ExploreOutcome out = clean.explore_exhaustive(*prog, kDetectionBudget);
    ASSERT_FALSE(out.violation.has_value()) << out.violation->to_string();
  }

  Explorer ex(c.family, prog->nthreads());
  ex.oracle().forbid(c.from, c.to);
  ExploreOutcome out = ex.explore_exhaustive(*prog, kDetectionBudget);
  ASSERT_TRUE(out.violation.has_value())
      << "mutant survived " << out.stats.schedules << " schedules";
  EXPECT_LT(out.violation->schedule_index, kDetectionBudget);
  // The violation message names the forbidden edge.
  EXPECT_NE(out.violation->what.find(state_kind_name(c.from)),
            std::string::npos)
      << out.violation->what;
  EXPECT_NE(out.violation->what.find(state_kind_name(c.to)),
            std::string::npos)
      << out.violation->what;
  EXPECT_FALSE(out.violation->trace.empty());

  // The recorded schedule is replayable evidence: running the same choice
  // sequence again (same mutated oracle) reproduces the violation
  // deterministically, and the replay follows the trace without diverging.
  RunResult replayed = ex.replay(*prog, out.violation->trace);
  EXPECT_FALSE(replayed.replay_diverged);
  EXPECT_GT(ex.oracle().violations(), 0u)
      << "replaying the recorded trace did not reproduce the violation";

  // And the mutation is test-local: a fresh Explorer (fresh oracle derived
  // from the transition model) accepts the same schedule.
  Explorer pristine(c.family, prog->nthreads());
  RunResult clean_run = pristine.replay(*prog, out.violation->trace);
  EXPECT_FALSE(clean_run.replay_diverged);
  EXPECT_EQ(pristine.oracle().violations(), 0u);
  EXPECT_EQ(clean_run.digest, replayed.digest)
      << "re-execution of the same schedule was not deterministic";
}

// Edges chosen per family from successions the exhaustive suite proves are
// exercised: the optimistic/hybrid coordination entry (WrExOpt -> Int on
// cross-thread write/write conflicts) and the pessimistic read-share
// formation (RdExPess -> RdShPess on the second reader).
INSTANTIATE_TEST_SUITE_P(
    BrokenTransitionModels, MutationP,
    ::testing::Values(
        MutationCase{Family::kOptimistic, "ww-conflict", StateKind::kWrExOpt,
                     StateKind::kInt},
        MutationCase{Family::kHybrid, "ww-conflict", StateKind::kWrExOpt,
                     StateKind::kInt},
        MutationCase{Family::kHybrid, "deferred-unlock",
                     StateKind::kWrExWLock, StateKind::kWrExPess},
        MutationCase{Family::kPessimistic, "read-share", StateKind::kRdExPess,
                     StateKind::kRdShPess}),
    case_name);

// Fuzzing must detect mutants too — the seeded strategy is what CI leans on
// for programs whose trees are too big to exhaust.
TEST(ScheduleMutationFuzz, FuzzerDetectsForbiddenEdge) {
  const Program* prog = find_builtin("ww-conflict");
  ASSERT_NE(prog, nullptr);

  Explorer ex(Family::kHybrid, prog->nthreads());
  ex.oracle().forbid(StateKind::kWrExOpt, StateKind::kInt);
  ExploreOutcome out =
      ex.explore_fuzz(*prog, /*seed=*/0xC0FFEE, /*schedules=*/kDetectionBudget,
                      /*preemption_bound=*/2);
  ASSERT_TRUE(out.violation.has_value())
      << "mutant survived " << out.stats.schedules << " fuzz schedules";
  EXPECT_FALSE(out.violation->trace.empty());

  // The fuzz violation is replayable from its recorded trace alone (no seed
  // needed): same forbidden edge fires again.
  RunResult replayed = ex.replay(*prog, out.violation->trace);
  EXPECT_FALSE(replayed.replay_diverged);
  EXPECT_GT(ex.oracle().violations(), 0u);
}

}  // namespace
}  // namespace ht::schedule
