// Satellite of DESIGN.md §11: the "quarantine" builtin program — one thread
// quarantines a peer that owns both an optimistic object and a deferred
// pessimistic lock — explored EXHAUSTIVELY under the virtual scheduler, with
// the transition-conformance shadow checker active where compiled in. Every
// interleaving (quarantine racing the victim's accesses, the sweep racing
// the survivor's lazy seizure) must terminate, satisfy the widened state-pair
// oracle, and leave every object quiescent.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>

#include "schedule/explorer.hpp"
#include "schedule/program.hpp"

namespace ht::schedule {
namespace {

constexpr std::uint64_t kBudget = 4096;

class SchedQuarantine : public ::testing::TestWithParam<Family> {};

// All interleavings complete and end quiescent; at least one schedule
// actually quarantines the victim while it still owns reclaimable state
// (sweep seizes > 0 objects), so the suite cannot pass vacuously.
TEST_P(SchedQuarantine, AllInterleavingsCompleteAndSomeSeize) {
  const Program* prog = find_builtin("quarantine");
  ASSERT_NE(prog, nullptr);
  ASSERT_TRUE(prog->has_quarantine());
  Explorer ex(GetParam(), prog->nthreads());

  std::uint64_t runs_quarantined = 0;
  std::uint64_t total_seized = 0;
  ex.check_policy().extra = [&](const RunResult& r) -> std::string {
    runs_quarantined += r.quarantined;
    total_seized += r.objects_seized;
    if (r.quarantined > 1) return "more than one thread quarantined";
    return "";
  };

  ExploreOutcome out = ex.explore_exhaustive(*prog, kBudget);
  ASSERT_FALSE(out.violation.has_value()) << out.violation->to_string();
  EXPECT_TRUE(out.stats.complete) << "budget too small: tree not exhausted";
  EXPECT_EQ(out.stats.deadlocks, 0u);
  EXPECT_EQ(out.stats.truncated, 0u);
  EXPECT_GT(out.stats.schedules, 1u);
  // The kQuarantine op is unconditional, so executed schedules quarantine...
  EXPECT_GT(runs_quarantined, 0u);
  // ...and in some order the victim still held seizable state at sweep time.
  // Exception: the pure pessimistic tracker locks only within a single
  // access (sentinel in, unlock out in the same step), so a victim can never
  // hold a lock across a scheduling point and there is nothing to seize.
  if (GetParam() == Family::kPessimistic) {
    EXPECT_EQ(total_seized, 0u);
  } else {
    EXPECT_GT(total_seized, 0u)
        << "no interleaving exercised eager ownership reclamation";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, SchedQuarantine,
    ::testing::Values(Family::kPessimistic, Family::kOptimistic,
                      Family::kHybrid),
    [](const ::testing::TestParamInfo<Family>& param) {
      return std::string(family_name(param.param));
    });

// A quarantining schedule replays bit-identically: deterministic recovery is
// what makes post-mortem debugging of a degraded run possible at all.
TEST(SchedQuarantineReplay, QuarantiningTraceReplaysBitIdentically) {
  const Program* prog = find_builtin("quarantine");
  ASSERT_NE(prog, nullptr);
  Explorer ex(Family::kHybrid, prog->nthreads());

  RunResult seized_run;
  ex.check_policy().extra = [&](const RunResult& r) -> std::string {
    if (r.objects_seized > 0 && seized_run.trace.empty()) seized_run = r;
    return "";
  };
  ExploreOutcome out = ex.explore_exhaustive(*prog, kBudget);
  ASSERT_FALSE(out.violation.has_value()) << out.violation->to_string();
  ASSERT_FALSE(seized_run.trace.empty());

  const RunResult replayed = ex.replay(*prog, seized_run.trace);
  EXPECT_FALSE(replayed.replay_diverged);
  EXPECT_TRUE(replayed.complete());
  EXPECT_EQ(replayed.digest, seized_run.digest);
  EXPECT_EQ(replayed.quarantined, seized_run.quarantined);
  EXPECT_EQ(replayed.objects_seized, seized_run.objects_seized);
}

// The seizure edges the widened oracle admits are actually exercised: under
// the hybrid tracker some interleaving must show the victim's deferred write
// lock jumping straight to its pessimistic landing (WrExWLock -> WrExPess by
// the sweep, not by the owner's own PSRO flush — the owner never flushes).
TEST(SchedQuarantineEdges, HybridSweepSeizesTheDeferredWriteLock) {
  const Program* prog = find_builtin("quarantine");
  ASSERT_NE(prog, nullptr);
  Explorer ex(Family::kHybrid, prog->nthreads());

  std::set<std::pair<StateKind, StateKind>> edges;
  ex.run_config().on_state_change = [&](const StateChange& c) {
    edges.insert({c.from.kind(), c.to.kind()});
  };
  ExploreOutcome out = ex.explore_exhaustive(*prog, kBudget);
  ASSERT_FALSE(out.violation.has_value()) << out.violation->to_string();
  EXPECT_TRUE(edges.count({StateKind::kWrExWLock, StateKind::kWrExPess}))
      << "no interleaving seized the victim's deferred write lock";
}

}  // namespace
}  // namespace ht::schedule
