// Seed-corpus regression test: every line of tests/corpus/*.txt is a
// previously-interesting chaos/fuzz configuration — a seed that once
// exposed a bug, or a corner the generic suites do not pin — replayed
// through the same deterministic harness test_schedule_chaos uses. Past
// bugs stay fixed because their exact reproducers re-run on every build.
//
// Line format (whitespace-separated, `#` starts a comment):
//
//   <family> <program_seed> <threads> <objects> <ops> <faults:0|1>
//       <schedules> <preemption_bound>
//
// e.g. `hybrid 4242 3 4 12 1 60 3`. Families: pessimistic | optimistic |
// hybrid | ideal. A failing entry prints its file, line, and the explorer
// violation (schedule seed + slot trace), which tools/schedule_explore
// --replay reproduces bit-identically.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "faultinject/fault_injector.hpp"
#include "schedule/explorer.hpp"
#include "schedule/program.hpp"

#ifndef HT_TEST_CORPUS_DIR
#error "HT_TEST_CORPUS_DIR must point at tests/corpus"
#endif

namespace ht::schedule {
namespace {

struct CorpusEntry {
  std::string origin;  // "<file>:<line>" for failure messages
  Family family = Family::kHybrid;
  std::uint64_t program_seed = 0;
  int threads = 2;
  int objects = 2;
  int ops = 8;
  bool faults = false;
  std::uint64_t schedules = 60;
  int preemption_bound = 3;
};

std::vector<CorpusEntry> load_corpus() {
  std::vector<CorpusEntry> entries;
  std::vector<std::filesystem::path> files;
  for (const auto& e :
       std::filesystem::directory_iterator(HT_TEST_CORPUS_DIR)) {
    if (e.path().extension() == ".txt") files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());  // deterministic replay order
  for (const std::filesystem::path& path : files) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "unreadable corpus file " << path;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      std::istringstream ls(line);
      std::string family_word;
      if (!(ls >> family_word)) continue;  // blank / comment-only line
      CorpusEntry e;
      e.origin = path.filename().string() + ":" + std::to_string(lineno);
      const std::optional<Family> fam = family_from_name(family_word);
      EXPECT_TRUE(fam.has_value())
          << e.origin << ": unknown family '" << family_word << "'";
      if (!fam) continue;
      e.family = *fam;
      int faults_flag = 0;
      EXPECT_TRUE(static_cast<bool>(ls >> e.program_seed >> e.threads >>
                                    e.objects >> e.ops >> faults_flag >>
                                    e.schedules >> e.preemption_bound))
          << e.origin << ": malformed corpus line '" << line << "'";
      e.faults = faults_flag != 0;
      entries.push_back(e);
    }
  }
  return entries;
}

TEST(SeedCorpus, EveryCheckedInSeedStaysClean) {
  const std::vector<CorpusEntry> entries = load_corpus();
  // An empty corpus would mean the directory path is wrong and this test is
  // silently vacuous — fail loudly instead.
  ASSERT_FALSE(entries.empty())
      << "no corpus entries under " << HT_TEST_CORPUS_DIR;

  for (const CorpusEntry& e : entries) {
    const Program prog =
        make_chaos_program(e.program_seed, e.threads, e.objects, e.ops);
    Explorer ex(e.family, e.threads);
    FaultConfig faults;
    if (e.faults) {
      faults.seed = e.program_seed;
      faults.stall_polls = 8;  // corpus schedules are short; keep stalls short
      faults.enable(FaultSite::kPollSkip, 20'000)
          .enable(FaultSite::kCoordStall, 5'000);
      ex.run_config().faults = &faults;
    }
    const ExploreOutcome out =
        ex.explore_fuzz(prog, /*seed=*/e.program_seed * 31 + 7, e.schedules,
                        e.preemption_bound);
    if (out.violation) {
      ADD_FAILURE() << "corpus entry " << e.origin << " (seed "
                    << e.program_seed << ", " << family_name(e.family) << ", "
                    << e.threads << "t/" << e.objects << "o/" << e.ops
                    << " ops" << (e.faults ? ", faults" : "") << ")\n"
                    << out.violation->to_string();
    }
    EXPECT_EQ(out.stats.schedules, e.schedules) << e.origin;
    EXPECT_EQ(out.stats.deadlocks, 0u) << e.origin;
    EXPECT_EQ(out.stats.truncated, 0u) << e.origin;
  }
}

}  // namespace
}  // namespace ht::schedule
