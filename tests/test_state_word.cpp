// Unit tests for the state-word encoding: every kind round-trips its payload
// and the predicates partition the kinds exactly as §3.2 defines.
#include "metadata/state_word.hpp"

#include <gtest/gtest.h>

namespace ht {
namespace {

TEST(StateWord, ExclusiveStatesRoundTripTid) {
  for (ThreadId t : {ThreadId{0}, ThreadId{1}, ThreadId{63}, ThreadId{4000}}) {
    EXPECT_EQ(StateWord::wr_ex_opt(t).tid(), t);
    EXPECT_EQ(StateWord::rd_ex_opt(t).tid(), t);
    EXPECT_EQ(StateWord::wr_ex_pess(t).tid(), t);
    EXPECT_EQ(StateWord::rd_ex_pess(t).tid(), t);
    EXPECT_EQ(StateWord::wr_ex_wlock(t).tid(), t);
    EXPECT_EQ(StateWord::wr_ex_rlock(t).tid(), t);
    EXPECT_EQ(StateWord::rd_ex_rlock(t).tid(), t);
    EXPECT_EQ(StateWord::intermediate(t).tid(), t);
  }
}

TEST(StateWord, RdShStatesRoundTripCounterAndHolders) {
  for (std::uint32_t c : {0u, 1u, 77u, 0xFFFFFFFFu}) {
    EXPECT_EQ(StateWord::rd_sh_opt(c).counter(), c);
    EXPECT_EQ(StateWord::rd_sh_pess(c).counter(), c);
    for (std::uint32_t n : {1u, 2u, 4095u}) {
      const StateWord s = StateWord::rd_sh_rlock(c, n);
      EXPECT_EQ(s.counter(), c);
      EXPECT_EQ(s.rdlock_count(), n);
      EXPECT_EQ(s.kind(), StateKind::kRdShRLock);
    }
  }
}

TEST(StateWord, KindsAreDistinctAndRecoverable) {
  const StateWord words[] = {
      StateWord::wr_ex_opt(5),      StateWord::rd_ex_opt(5),
      StateWord::rd_sh_opt(9),      StateWord::wr_ex_pess(5),
      StateWord::rd_ex_pess(5),     StateWord::rd_sh_pess(9),
      StateWord::wr_ex_wlock(5),    StateWord::wr_ex_rlock(5),
      StateWord::rd_ex_rlock(5),    StateWord::rd_sh_rlock(9, 2),
      StateWord::intermediate(5),   StateWord::pess_locked_sentinel(5),
  };
  for (std::size_t i = 0; i < std::size(words); ++i) {
    for (std::size_t j = i + 1; j < std::size(words); ++j) {
      EXPECT_NE(words[i].raw(), words[j].raw()) << i << " vs " << j;
    }
  }
}

TEST(StateWord, PredicatesPartitionTheModel) {
  const StateWord opt[] = {StateWord::wr_ex_opt(1), StateWord::rd_ex_opt(1),
                           StateWord::rd_sh_opt(3)};
  const StateWord unlocked[] = {StateWord::wr_ex_pess(1),
                                StateWord::rd_ex_pess(1),
                                StateWord::rd_sh_pess(3)};
  const StateWord locked[] = {
      StateWord::wr_ex_wlock(1), StateWord::wr_ex_rlock(1),
      StateWord::rd_ex_rlock(1), StateWord::rd_sh_rlock(3, 1)};

  for (const auto& s : opt) {
    EXPECT_TRUE(s.is_optimistic());
    EXPECT_FALSE(s.is_pessimistic());
    EXPECT_FALSE(s.is_intermediate());
  }
  for (const auto& s : unlocked) {
    EXPECT_TRUE(s.is_pess_unlocked());
    EXPECT_TRUE(s.is_pessimistic());
    EXPECT_FALSE(s.is_pess_locked());
    EXPECT_FALSE(s.is_optimistic());
  }
  for (const auto& s : locked) {
    EXPECT_TRUE(s.is_pess_locked());
    EXPECT_TRUE(s.is_pessimistic());
    EXPECT_FALSE(s.is_pess_unlocked());
    EXPECT_FALSE(s.is_optimistic());
  }
  EXPECT_TRUE(StateWord::intermediate(7).is_intermediate());
  EXPECT_FALSE(StateWord::intermediate(7).is_optimistic());
  EXPECT_FALSE(StateWord::intermediate(7).is_pessimistic());
}

TEST(StateWord, AccessClassifiers) {
  EXPECT_TRUE(StateWord::wr_ex_opt(1).is_wr_ex());
  EXPECT_TRUE(StateWord::wr_ex_wlock(1).is_wr_ex());
  EXPECT_TRUE(StateWord::wr_ex_rlock(1).is_wr_ex());
  EXPECT_TRUE(StateWord::rd_ex_opt(1).is_rd_ex());
  EXPECT_TRUE(StateWord::rd_ex_rlock(1).is_rd_ex());
  EXPECT_TRUE(StateWord::rd_sh_opt(1).is_rd_sh());
  EXPECT_TRUE(StateWord::rd_sh_rlock(1, 1).is_rd_sh());
  EXPECT_FALSE(StateWord::rd_sh_opt(1).has_owner());
  EXPECT_TRUE(StateWord::wr_ex_opt(1).has_owner());
}

TEST(StateWord, PermitsReadBy) {
  EXPECT_TRUE(StateWord::wr_ex_opt(3).permits_read_by(3));
  EXPECT_FALSE(StateWord::wr_ex_opt(3).permits_read_by(4));
  EXPECT_TRUE(StateWord::rd_sh_opt(9).permits_read_by(4));
  EXPECT_FALSE(StateWord::intermediate(3).permits_read_by(3));
}

TEST(StateWord, ToStringNamesEveryKind) {
  EXPECT_EQ(StateWord::wr_ex_opt(3).to_string(), "WrExOpt(T3)");
  EXPECT_EQ(StateWord::rd_sh_rlock(7, 2).to_string(), "RdShRLock(c=7,n=2)");
  EXPECT_EQ(StateWord::rd_sh_pess(1).to_string(), "RdShPess(c=1)");
}

}  // namespace
}  // namespace ht
