// Program synchronization primitives (PSRO semantics, blocking safe points)
// and the enforcer's undo log.
#include <gtest/gtest.h>

#include <thread>

#include "enforcer/region.hpp"
#include "runtime/sync.hpp"
#include "test_util.hpp"
#include "tracking/tracked_var.hpp"
#include "tracking/null_tracker.hpp"

namespace ht {
namespace {

TEST(ProgramLock, ReleaseIsAPsro) {
  Runtime rt;
  ThreadContext& ctx = rt.register_thread();
  ProgramLock l;
  l.acquire(ctx);
  const std::uint64_t before = ctx.release_counter_relaxed();
  l.release(ctx);
  EXPECT_EQ(ctx.release_counter_relaxed(), before + 1);
  EXPECT_EQ(ctx.stats.psros, 1u);
}

TEST(ProgramLock, UncontendedAcquireDoesNotBlock) {
  Runtime rt;
  ThreadContext& ctx = rt.register_thread();
  ProgramLock l;
  l.acquire(ctx);
  EXPECT_FALSE(ThreadStatus::is_blocked(
      ctx.owner_side.status.load(std::memory_order_relaxed)));
  l.release(ctx);
}

TEST(ProgramLock, ContendedAcquireParksBlocked) {
  Runtime rt;
  ProgramLock l;
  ThreadContext& holder = rt.register_thread();
  l.acquire(holder);

  std::atomic<bool> waiter_blocked{false};
  std::atomic<bool> done{false};
  std::thread waiter([&] {
    ThreadContext& ctx = rt.register_thread();
    l.acquire(ctx);  // blocks; begin_blocking publishes BLOCKED first
    l.release(ctx);
    done.store(true);
  });
  // Observe the waiter actually parking (status of thread id 1).
  while (!waiter_blocked.load() && !done.load()) {
    if (rt.registry().high_water() >= 2) {
      const auto s = rt.registry().context(1).owner_side.status.load(
          std::memory_order_acquire);
      if (ThreadStatus::is_blocked(s)) waiter_blocked.store(true);
    }
    std::this_thread::yield();
  }
  EXPECT_TRUE(waiter_blocked.load());
  l.release(holder);
  waiter.join();
  EXPECT_TRUE(done.load());
  // After waking, the waiter must be RUNNING again (it released and exited).
  EXPECT_FALSE(ThreadStatus::is_blocked(
      rt.registry().context(1).owner_side.status.load(
          std::memory_order_acquire)));
}

TEST(ProgramLock, ScopeIsRaii) {
  Runtime rt;
  ThreadContext& ctx = rt.register_thread();
  ProgramLock l;
  {
    ProgramLock::Scope s(l, ctx);
  }
  EXPECT_EQ(ctx.stats.psros, 1u);
  l.acquire(ctx);  // not deadlocked: the scope released
  l.release(ctx);
}

TEST(ProgramBarrier, RendezvousAndPsro) {
  Runtime rt;
  ProgramBarrier barrier(3);
  std::atomic<int> passed{0};
  std::vector<std::thread> ts;
  for (int i = 0; i < 3; ++i) {
    ts.emplace_back([&] {
      ThreadContext& ctx = rt.register_thread();
      barrier.arrive_and_wait(ctx);
      passed.fetch_add(1);
      EXPECT_GE(ctx.stats.psros, 1u);
      rt.unregister_thread(ctx);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(passed.load(), 3);
}

TEST(UndoLog, RollbackRestoresInReverseOrder) {
  UndoLog log;
  std::atomic<std::uint64_t> a{1}, b{2};
  auto restore = [](void* addr, std::uint64_t bits) {
    static_cast<std::atomic<std::uint64_t>*>(addr)->store(
        bits, std::memory_order_relaxed);
  };
  log.push(&a, a.load(), restore);
  a.store(10);
  log.push(&b, b.load(), restore);
  b.store(20);
  log.push(&a, a.load(), restore);  // second write to a
  a.store(100);
  log.rollback();
  EXPECT_EQ(a.load(), 1u);  // earliest old value wins
  EXPECT_EQ(b.load(), 2u);
  EXPECT_TRUE(log.empty());
}

TEST(UndoLog, CommitDiscardsEntries) {
  UndoLog log;
  std::atomic<std::uint64_t> a{1};
  log.push(&a, 1,
           [](void* addr, std::uint64_t bits) {
             static_cast<std::atomic<std::uint64_t>*>(addr)->store(bits);
           });
  a.store(5);
  log.commit();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(a.load(), 5u);
}

TEST(TrackedVar, StoreLogsUndoOnlyInsideRegions) {
  Runtime rt;
  NullTracker tracker(rt);
  ThreadContext& ctx = rt.register_thread();
  TrackedVar<std::uint64_t> v;
  v.init(tracker, ctx, 42);

  UndoLog log;
  v.store(tracker, ctx, 1);  // no region: no undo entry
  EXPECT_TRUE(log.empty());

  ctx.undo_log = &log;
  v.store(tracker, ctx, 2);
  EXPECT_EQ(log.size(), 1u);
  ctx.undo_log = nullptr;

  log.rollback();
  EXPECT_EQ(v.load(tracker, ctx), 1u);  // back to the pre-region value
}

TEST(TrackedVar, RawAccessBypassesTracking) {
  Runtime rt;
  NullTracker tracker(rt);
  ThreadContext& ctx = rt.register_thread();
  TrackedVar<std::uint64_t> v;
  v.init(tracker, ctx, 3);
  const std::uint64_t points_before = ctx.point_index;
  EXPECT_EQ(v.raw_load(), 3u);
  v.raw_store(4);
  EXPECT_EQ(v.raw_load(), 4u);
  EXPECT_EQ(ctx.point_index, points_before);  // raw access: no point bump
}

TEST(TrackedVar, TrackedAccessesAdvancePointIndex) {
  Runtime rt;
  NullTracker tracker(rt);
  ThreadContext& ctx = rt.register_thread();
  TrackedVar<std::uint64_t> v;
  v.init(tracker, ctx, 0);
  const std::uint64_t p0 = ctx.point_index;
  (void)v.load(tracker, ctx);
  v.store(tracker, ctx, 1);
  EXPECT_EQ(ctx.point_index, p0 + 2);
}

}  // namespace
}  // namespace ht
