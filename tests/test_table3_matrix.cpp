// Exhaustive Table 3 transition matrix: for every (old state, access,
// thread) combination the hybrid model defines, set the object's metadata to
// the old state, perform one access, and check the new state — a direct
// transcription of the paper's Appendix B table.
//
// Conventions: T0 is "T" / "T1" (the state's owner where applicable), T1 is
// "T2" (the other thread). Contended rows and optimistic conflicting rows
// need a cooperating owner and are covered by test_hybrid_tracker.cpp; this
// file covers every row resolvable without coordination, which is exactly
// the set Table 3 marks CAS/None.
#include <gtest/gtest.h>

#include "test_util.hpp"
#include "tracking/hybrid_tracker.hpp"
#include "tracking/tracked_var.hpp"

namespace ht {
namespace {

enum class Access { kRead, kWrite };

struct Row {
  const char* name;
  // old state built from (kind, owner-is-self?, c, n) at runtime
  StateKind old_kind;
  bool owner_is_actor;  // for owner-bearing states
  std::uint32_t n;      // RdShRLock holder count
  Access access;
  StateKind new_kind;
  bool new_owner_is_actor;  // for owner-bearing new states
  std::uint32_t new_n;      // expected holder count (RdShRLock)
  bool actor_prelocked;     // actor already holds a read lock (in rd_set)
};

class Table3MatrixTest : public ::testing::TestWithParam<Row> {};

TEST_P(Table3MatrixTest, TransitionMatchesTable) {
  const Row& row = GetParam();
  Runtime rt;
  HybridTracker<true> tracker(rt, HybridConfig{});
  ThreadContext& actor = rt.register_thread();   // T (id 0)
  ThreadContext& other = rt.register_thread();   // T1/T2 counterpart (id 1)
  tracker.attach_thread(actor);
  tracker.attach_thread(other);

  TrackedVar<std::uint64_t> var;
  var.init(tracker, actor, 0);

  const ThreadId owner_id = row.owner_is_actor ? actor.id : other.id;
  const std::uint32_t c = 17;  // arbitrary read-share epoch
  StateWord old_state;
  switch (row.old_kind) {
    case StateKind::kWrExOpt: old_state = StateWord::wr_ex_opt(owner_id); break;
    case StateKind::kRdExOpt: old_state = StateWord::rd_ex_opt(owner_id); break;
    case StateKind::kRdShOpt: old_state = StateWord::rd_sh_opt(c); break;
    case StateKind::kWrExPess: old_state = StateWord::wr_ex_pess(owner_id); break;
    case StateKind::kRdExPess: old_state = StateWord::rd_ex_pess(owner_id); break;
    case StateKind::kRdShPess: old_state = StateWord::rd_sh_pess(c); break;
    case StateKind::kWrExWLock: old_state = StateWord::wr_ex_wlock(owner_id); break;
    case StateKind::kWrExRLock: old_state = StateWord::wr_ex_rlock(owner_id); break;
    case StateKind::kRdExRLock: old_state = StateWord::rd_ex_rlock(owner_id); break;
    case StateKind::kRdShRLock:
      old_state = StateWord::rd_sh_rlock(c, row.n);
      break;
    default: FAIL() << "unsupported old state";
  }
  var.meta().reset(old_state);
  if (row.actor_prelocked) {
    actor.rd_set.insert(&var.meta());
    actor.lock_buffer.push_back(&var.meta());
  }
  // Reading RdSh states without a fence transition requires an up-to-date
  // per-thread counter; give the actor one for same-state rows.
  actor.rd_sh_count = c;

  if (row.access == Access::kRead) {
    (void)var.load(tracker, actor);
  } else {
    var.store(tracker, actor, 1);
  }

  const StateWord got = var.meta().load_state();
  EXPECT_EQ(got.kind(), row.new_kind)
      << row.name << ": got " << got.to_string();
  if (got.has_owner() && row.new_kind != StateKind::kRdShRLock) {
    EXPECT_EQ(got.tid(), row.new_owner_is_actor ? actor.id : other.id)
        << row.name;
  }
  if (row.new_kind == StateKind::kRdShRLock) {
    EXPECT_EQ(got.rdlock_count(), row.new_n) << row.name;
  }
  // Every locked new state must be tracked in the actor's lock buffer
  // exactly once (unless the old state was already the actor's lock).
  const StateWord final_state = var.meta().load_state();
  if (final_state.is_pess_locked()) {
    int entries = 0;
    for (ObjectMeta* m : actor.lock_buffer) entries += m == &var.meta() ? 1 : 0;
    EXPECT_EQ(entries, 1) << row.name << ": lock buffer entries";
    // Flushing releases exactly the actor's hold. Rows fabricating residual
    // read locks held by the other thread keep those locks: RdShRLock(n)
    // drops to n-1 rather than unlocking.
    tracker.flush(actor);
    const StateWord after = var.meta().load_state();
    if (final_state.kind() == StateKind::kRdShRLock &&
        final_state.rdlock_count() > 1) {
      ASSERT_EQ(after.kind(), StateKind::kRdShRLock) << row.name;
      EXPECT_EQ(after.rdlock_count(), final_state.rdlock_count() - 1)
          << row.name;
    } else {
      EXPECT_FALSE(after.is_pess_locked()) << row.name << ": "
                                           << after.to_string();
    }
  }
}

const Row kRows[] = {
    // --- reentrant rows (Same, None) ---------------------------------------
    {"WrExWLock_T W by T", StateKind::kWrExWLock, true, 0, Access::kWrite,
     StateKind::kWrExWLock, true, 0, true},
    {"WrExWLock_T R by T", StateKind::kWrExWLock, true, 0, Access::kRead,
     StateKind::kWrExWLock, true, 0, true},
    {"WrExRLock_T R by T", StateKind::kWrExRLock, true, 0, Access::kRead,
     StateKind::kWrExRLock, true, 0, true},
    {"RdExRLock_T R by T", StateKind::kRdExRLock, true, 0, Access::kRead,
     StateKind::kRdExRLock, true, 0, true},
    {"RdShRLock(2) R by T in rdSet", StateKind::kRdShRLock, false, 2,
     Access::kRead, StateKind::kRdShRLock, false, 2, true},

    // --- pessimistic uncontended (CAS) --------------------------------------
    {"WrExPess_T W by T", StateKind::kWrExPess, true, 0, Access::kWrite,
     StateKind::kWrExWLock, true, 0, false},
    {"WrExPess_T R by T", StateKind::kWrExPess, true, 0, Access::kRead,
     StateKind::kWrExRLock, true, 0, false},
    {"RdExPess_T R by T", StateKind::kRdExPess, true, 0, Access::kRead,
     StateKind::kRdExRLock, true, 0, false},
    {"RdExPess_T W by T", StateKind::kRdExPess, true, 0, Access::kWrite,
     StateKind::kWrExWLock, true, 0, false},
    {"RdExRLock_T W by T", StateKind::kRdExRLock, true, 0, Access::kWrite,
     StateKind::kWrExWLock, true, 0, true},
    {"WrExRLock_T W by T", StateKind::kWrExRLock, true, 0, Access::kWrite,
     StateKind::kWrExWLock, true, 0, true},
    {"RdExPess_T1 R by T2", StateKind::kRdExPess, false, 0, Access::kRead,
     StateKind::kRdShRLock, false, 1, false},
    {"RdExRLock_T1 R by T2", StateKind::kRdExRLock, false, 0, Access::kRead,
     StateKind::kRdShRLock, false, 2, false},
    {"WrExRLock_T1 R by T2", StateKind::kWrExRLock, false, 0, Access::kRead,
     StateKind::kRdShRLock, false, 2, false},
    {"RdShPess R by T", StateKind::kRdShPess, false, 0, Access::kRead,
     StateKind::kRdShRLock, false, 1, false},
    {"RdShRLock(1) R by T not in rdSet", StateKind::kRdShRLock, false, 1,
     Access::kRead, StateKind::kRdShRLock, false, 2, false},
    {"WrExPess_T1 W by T2", StateKind::kWrExPess, false, 0, Access::kWrite,
     StateKind::kWrExWLock, true, 0, false},
    {"WrExPess_T1 R by T2", StateKind::kWrExPess, false, 0, Access::kRead,
     StateKind::kRdExRLock, true, 0, false},
    {"RdExPess_T1 W by T2", StateKind::kRdExPess, false, 0, Access::kWrite,
     StateKind::kWrExWLock, true, 0, false},
    {"RdShPess W by T", StateKind::kRdShPess, false, 0, Access::kWrite,
     StateKind::kWrExWLock, true, 0, false},
    {"RdShRLock(1) W by sole holder", StateKind::kRdShRLock, false, 1,
     Access::kWrite, StateKind::kWrExWLock, true, 0, true},

    // --- optimistic same-state / upgrading ----------------------------------
    {"WrExOpt_T W by T", StateKind::kWrExOpt, true, 0, Access::kWrite,
     StateKind::kWrExOpt, true, 0, false},
    {"WrExOpt_T R by T", StateKind::kWrExOpt, true, 0, Access::kRead,
     StateKind::kWrExOpt, true, 0, false},
    {"RdExOpt_T R by T", StateKind::kRdExOpt, true, 0, Access::kRead,
     StateKind::kRdExOpt, true, 0, false},
    {"RdExOpt_T W by T", StateKind::kRdExOpt, true, 0, Access::kWrite,
     StateKind::kWrExOpt, true, 0, false},
    {"RdExOpt_T1 R by T2", StateKind::kRdExOpt, false, 0, Access::kRead,
     StateKind::kRdShOpt, false, 0, false},
    {"RdShOpt R by T", StateKind::kRdShOpt, false, 0, Access::kRead,
     StateKind::kRdShOpt, false, 0, false},
};

INSTANTIATE_TEST_SUITE_P(AllRows, Table3MatrixTest, ::testing::ValuesIn(kRows),
                         [](const ::testing::TestParamInfo<Row>& info) {
                           std::string s = info.param.name;
                           for (char& ch : s) {
                             if (!std::isalnum(static_cast<unsigned char>(ch)))
                               ch = '_';
                           }
                           return s;
                         });

// The * footnote: pessimistic transitions into RdShRLock update the actor's
// rd_sh_count to max(rd_sh_count, c).
TEST(Table3Footnotes, RdShJoinUpdatesThreadCounter) {
  Runtime rt;
  HybridTracker<> tracker(rt, HybridConfig{});
  ThreadContext& actor = rt.register_thread();
  ThreadContext& other = rt.register_thread();
  tracker.attach_thread(actor);
  (void)other;

  TrackedVar<std::uint64_t> var;
  var.init(tracker, actor, 0);
  var.meta().reset(StateWord::rd_sh_pess(41));
  actor.rd_sh_count = 7;
  (void)var.load(tracker, actor);
  EXPECT_EQ(actor.rd_sh_count, 41u);
  tracker.flush(actor);

  // ...but a larger thread counter is not regressed.
  var.meta().reset(StateWord::rd_sh_pess(5));
  (void)var.load(tracker, actor);
  EXPECT_EQ(actor.rd_sh_count, 41u);
  tracker.flush(actor);
}

// Fresh RdSh formations draw from the monotonically increasing global
// counter (Table 1 note *), so later epochs always look new to stale readers.
TEST(Table3Footnotes, FreshRdShEpochsAreMonotonic) {
  Runtime rt;
  HybridTracker<> tracker(rt, HybridConfig{});
  ThreadContext& actor = rt.register_thread();
  ThreadContext& other = rt.register_thread();
  tracker.attach_thread(actor);
  (void)other;

  TrackedVar<std::uint64_t> var;
  var.init(tracker, actor, 0);

  std::uint32_t last = 0;
  for (int i = 0; i < 4; ++i) {
    var.meta().reset(StateWord::rd_ex_pess(other.id));
    (void)var.load(tracker, actor);  // -> RdShRLock(1)_fresh
    const StateWord s = var.meta().load_state();
    ASSERT_EQ(s.kind(), StateKind::kRdShRLock);
    EXPECT_GT(s.counter(), last);
    last = s.counter();
    tracker.flush(actor);
  }
}

}  // namespace
}  // namespace ht
