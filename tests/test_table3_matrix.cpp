// Exhaustive Table 3 transition matrix, driven by the shared conformance
// model (analysis/transition_model.hpp): enumerate every hybrid key the
// model resolves WITHOUT coordination (fast-path / fence / CAS rows — the
// set Table 3 marks CAS/None), set an object's metadata to the key's from
// state, perform one access, and check the observed successor against the
// model's outcome: successor kind, ownership, RdSh epoch effect, holder
// count, and lock-buffer/read-set bookkeeping.
//
// The expectations are not written down here — they are *the* transition
// relation, so a tracker change that disagrees with the paper fails this
// test and the runtime shadow checker identically. Contended rows and
// coordination rows need a cooperating owner and are covered by
// test_hybrid_tracker.cpp.
//
// Conventions: T0 ("actor") performs the access; T1 ("other") is the state
// owner for ActorRel::kOther keys.
#include <gtest/gtest.h>

#include "analysis/transition_model.hpp"
#include "test_util.hpp"
#include "tracking/hybrid_tracker.hpp"
#include "tracking/tracked_var.hpp"

namespace ht {
namespace {

using analysis::AccessKind;
using analysis::ActorRel;
using analysis::CounterEffect;
using analysis::HolderEffect;
using analysis::Mechanism;
using analysis::Outcome;
using analysis::OutcomeKind;
using analysis::PolicyChoice;
using analysis::TrackerFamily;
using analysis::TransitionKey;

struct Row {
  TransitionKey key;
  Outcome outcome;
};

// Every hybrid key resolvable in a single-threaded harness: committed
// transitions whose mechanism needs no cooperating remote thread. Policy is
// fixed to kOpt (it only gates coordination landings and unlock targets,
// neither of which is in this set), and the WrExReadMode dimension is kept
// only where the model says it matters (WrExPess read by its owner).
std::vector<Row> resolvable_rows() {
  std::vector<Row> rows;
  for (const TransitionKey& key : analysis::enumerate_keys(TrackerFamily::kHybrid)) {
    const Outcome outcome =
        analysis::transition_outcome(TrackerFamily::kHybrid, key);
    if (outcome.kind != OutcomeKind::kTransition) continue;
    if (outcome.mechanism != Mechanism::kFastPath &&
        outcome.mechanism != Mechanism::kFence &&
        outcome.mechanism != Mechanism::kCas)
      continue;
    if (key.access == AccessKind::kUnlock) continue;  // covered via flush below
    if (key.policy != PolicyChoice::kOpt) continue;
    const bool mode_matters = key.from == StateKind::kWrExPess &&
                              key.access == AccessKind::kRead &&
                              key.rel == ActorRel::kOwner;
    if (!mode_matters && key.mode != WrExReadMode::kFull) continue;
    rows.push_back({key, outcome});
  }
  return rows;
}

std::string row_name(const ::testing::TestParamInfo<Row>& row_info) {
  std::string s = row_info.param.key.to_string();
  std::string out;
  for (char ch : s) {
    if (std::isalnum(static_cast<unsigned char>(ch))) {
      out += ch;
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

class Table3MatrixTest : public ::testing::TestWithParam<Row> {};

TEST_P(Table3MatrixTest, TransitionMatchesModel) {
  const TransitionKey& key = GetParam().key;
  const Outcome& outcome = GetParam().outcome;

  Runtime rt;
  HybridConfig cfg;
  cfg.wr_ex_read_mode = key.mode;
  HybridTracker<true> tracker(rt, cfg);
  ThreadContext& actor = rt.register_thread();  // T (id 0)
  ThreadContext& other = rt.register_thread();  // the remote owner (id 1)
  tracker.attach_thread(actor);
  tracker.attach_thread(other);

  TrackedVar<std::uint64_t> var;
  var.init(tracker, actor, 0);
  ObjectMeta& meta = var.meta();

  // ---- build the from state -------------------------------------------------
  const ThreadId owner_id =
      key.rel == ActorRel::kOwner ? actor.id : other.id;
  const std::uint32_t c = 17;  // arbitrary read-share epoch
  const std::uint32_t n = key.sole_holder ? 1 : 2;  // RdShRLock holders
  StateWord from;
  switch (key.from) {
    case StateKind::kWrExOpt: from = StateWord::wr_ex_opt(owner_id); break;
    case StateKind::kRdExOpt: from = StateWord::rd_ex_opt(owner_id); break;
    case StateKind::kRdShOpt: from = StateWord::rd_sh_opt(c); break;
    case StateKind::kWrExPess: from = StateWord::wr_ex_pess(owner_id); break;
    case StateKind::kRdExPess: from = StateWord::rd_ex_pess(owner_id); break;
    case StateKind::kRdShPess: from = StateWord::rd_sh_pess(c); break;
    case StateKind::kWrExWLock: from = StateWord::wr_ex_wlock(owner_id); break;
    case StateKind::kWrExRLock: from = StateWord::wr_ex_rlock(owner_id); break;
    case StateKind::kRdExRLock: from = StateWord::rd_ex_rlock(owner_id); break;
    case StateKind::kRdShRLock: from = StateWord::rd_sh_rlock(c, n); break;
    default: FAIL() << "state not constructible in a unit harness";
  }
  meta.reset(from);

  // ActorRel::kOwner on counter-carrying states means "up to date" (RdShOpt)
  // or "read-set member" (RdShRLock); the model's requires_* flags say what
  // the actor's deferred-unlocking structures must already hold.
  actor.rd_sh_count = key.rel == ActorRel::kOwner && from.is_rd_sh() ? c : 0;
  if (outcome.requires_lock_buffer) actor.lock_buffer.push_back(&meta);
  if (outcome.requires_rd_set) actor.rd_set.insert(&meta);

  // ---- one access -----------------------------------------------------------
  if (key.access == AccessKind::kRead) {
    (void)var.load(tracker, actor);
  } else {
    var.store(tracker, actor, 1);
  }

  // ---- successor vs the model ----------------------------------------------
  const StateWord got = meta.load_state();
  EXPECT_EQ(got.kind(), outcome.to) << "got " << got.to_string();
  if (got.has_owner()) {
    EXPECT_EQ(got.tid(), outcome.to_owned_by_actor ? actor.id : other.id);
  }
  switch (outcome.counter) {
    case CounterEffect::kNone:
      break;
    case CounterEffect::kKeep:
      EXPECT_EQ(got.counter(), c);
      break;
    case CounterEffect::kFresh:
      // Drawn from the global epoch counter of a fresh Runtime, which cannot
      // have reached the fabricated epoch yet.
      EXPECT_GT(got.counter(), 0u);
      EXPECT_NE(got.counter(), c);
      break;
  }
  if (outcome.to == StateKind::kRdShRLock) {
    std::uint32_t expect_n = 0;
    switch (outcome.holders) {
      case HolderEffect::kNone: expect_n = n; break;
      case HolderEffect::kOne: expect_n = 1; break;
      case HolderEffect::kTwo: expect_n = 2; break;
      case HolderEffect::kIncrement: expect_n = n + 1; break;
      case HolderEffect::kDecrement: expect_n = n - 1; break;
    }
    EXPECT_EQ(got.rdlock_count(), expect_n);
  }

  // ---- deferred-unlocking bookkeeping ---------------------------------------
  if (outcome.enters_rd_set || outcome.requires_rd_set) {
    EXPECT_TRUE(actor.rd_set.contains(&meta));
  }
  if (outcome.enters_lock_buffer || outcome.requires_lock_buffer) {
    int entries = 0;
    for (ObjectMeta* m : actor.lock_buffer) entries += m == &meta ? 1 : 0;
    EXPECT_EQ(entries, 1) << "lock buffer must hold the object exactly once";
  }
  // Every locked successor must release at the next flush: fully, or by
  // dropping to n-1 holders when the harness fabricated other holders.
  if (got.is_pess_locked()) {
    tracker.flush(actor);
    const StateWord after = meta.load_state();
    if (got.kind() == StateKind::kRdShRLock && got.rdlock_count() > 1) {
      ASSERT_EQ(after.kind(), StateKind::kRdShRLock);
      EXPECT_EQ(after.rdlock_count(), got.rdlock_count() - 1);
    } else {
      EXPECT_FALSE(after.is_pess_locked()) << after.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllRows, Table3MatrixTest,
                         ::testing::ValuesIn(resolvable_rows()), row_name);

// The * footnote: pessimistic transitions into RdShRLock update the actor's
// rd_sh_count to max(rd_sh_count, c).
TEST(Table3Footnotes, RdShJoinUpdatesThreadCounter) {
  Runtime rt;
  HybridTracker<> tracker(rt, HybridConfig{});
  ThreadContext& actor = rt.register_thread();
  ThreadContext& other = rt.register_thread();
  tracker.attach_thread(actor);
  (void)other;

  TrackedVar<std::uint64_t> var;
  var.init(tracker, actor, 0);
  var.meta().reset(StateWord::rd_sh_pess(41));
  actor.rd_sh_count = 7;
  (void)var.load(tracker, actor);
  EXPECT_EQ(actor.rd_sh_count, 41u);
  tracker.flush(actor);

  // ...but a larger thread counter is not regressed.
  var.meta().reset(StateWord::rd_sh_pess(5));
  (void)var.load(tracker, actor);
  EXPECT_EQ(actor.rd_sh_count, 41u);
  tracker.flush(actor);
}

// Fresh RdSh formations draw from the monotonically increasing global
// counter (Table 1 note *), so later epochs always look new to stale readers.
TEST(Table3Footnotes, FreshRdShEpochsAreMonotonic) {
  Runtime rt;
  HybridTracker<> tracker(rt, HybridConfig{});
  ThreadContext& actor = rt.register_thread();
  ThreadContext& other = rt.register_thread();
  tracker.attach_thread(actor);
  (void)other;

  TrackedVar<std::uint64_t> var;
  var.init(tracker, actor, 0);

  std::uint32_t last = 0;
  for (int i = 0; i < 4; ++i) {
    var.meta().reset(StateWord::rd_ex_pess(other.id));
    (void)var.load(tracker, actor);  // -> RdShRLock(1)_fresh
    const StateWord s = var.meta().load_state();
    ASSERT_EQ(s.kind(), StateKind::kRdShRLock);
    EXPECT_GT(s.counter(), last);
    last = s.counter();
    tracker.flush(actor);
  }
}

}  // namespace
}  // namespace ht
