// Telemetry-layer tests: ring overflow/torn-slot behavior, concurrent
// writers (free-running and under the deterministic virtual scheduler),
// trace file round trips with documented failure reasons, metric
// aggregation, golden-string exporter output (JSON / Prometheus / Chrome
// trace), and the zero-cost-off contract — a workload run with a session
// installed records events exactly when the build compiles the hooks in.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "schedule/virtual_scheduler.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/ring.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_io.hpp"
#include "tracking/hybrid_tracker.hpp"
#include "workload/apis.hpp"
#include "workload/workload.hpp"

namespace ht::telemetry {
namespace {

Event make_event(EventKind kind, std::uint64_t tsc, std::uint64_t arg0 = 0,
                 std::uint32_t arg1 = 0, std::uint32_t arg2 = 0,
                 std::uint16_t tid = 0) {
  Event e;
  e.tsc = tsc;
  e.arg0 = arg0;
  e.arg1 = arg1;
  e.arg2 = arg2;
  e.kind = static_cast<std::uint16_t>(kind);
  e.tid = tid;
  return e;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

// --- EventRing ---------------------------------------------------------------

TEST(EventRing, OverflowKeepsNewestAndCountsDropped) {
  EventRing ring(7, 8);
  ASSERT_EQ(ring.capacity(), 8u);
  for (std::uint64_t i = 0; i < 20; ++i) {
    ring.record(EventKind::kPsro, i);
  }
  EXPECT_EQ(ring.recorded(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);

  const std::vector<Event> events = ring.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    // Oldest events dropped: survivors are exactly 12..19, in order.
    EXPECT_EQ(events[i].arg0, 12u + i);
    EXPECT_EQ(events[i].seq, 12u + i);
    EXPECT_EQ(events[i].tid, 7u);
  }
}

TEST(EventRing, EmptySnapshot) {
  EventRing ring(0, 8);
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(EventRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventRing(0, 10).capacity(), 16u);
  EXPECT_EQ(EventRing(0, 1).capacity(), 1u);
  EXPECT_EQ(EventRing(0, 64).capacity(), 64u);
}

TEST(EventRing, ClearForgetsEverything) {
  EventRing ring(0, 8);
  for (int i = 0; i < 5; ++i) ring.record(EventKind::kPsro);
  ring.clear();
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
  ring.record(EventKind::kDepEdge, 42);
  const std::vector<Event> events = ring.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].arg0, 42u);
}

TEST(EventRing, TimestampsAreMonotonePerRing) {
  EventRing ring(0, 64);
  for (int i = 0; i < 50; ++i) ring.record(EventKind::kPsro);
  const std::vector<Event> events = ring.snapshot();
  ASSERT_EQ(events.size(), 50u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].tsc, events[i - 1].tsc);
  }
}

// --- concurrent writers ------------------------------------------------------

// Free-running writers with a concurrent reader: every snapshot taken while
// the rings are being written must be internally consistent (in-order
// sequence numbers, no torn slot surfacing a kind that was never recorded),
// and the post-join drain must be exact.
TEST(ConcurrentWriters, SnapshotsStayConsistentUnderWrites) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kEvents = 20'000;
  constexpr std::size_t kCapacity = 1024;
  TelemetrySession session(kCapacity);

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&session, t] {
      EventRing* ring = session.attach(static_cast<ThreadId>(t));
      for (std::uint64_t i = 0; i < kEvents; ++i) {
        ring->record(EventKind::kOptConflict, i,
                     static_cast<std::uint32_t>(t), kFlagStore);
      }
    });
  }

  for (int round = 0; round < 25; ++round) {
    for (int t = 0; t < kThreads; ++t) {
      EventRing* ring = session.attach(static_cast<ThreadId>(t));
      const std::vector<Event> events = ring->snapshot();
      EXPECT_LE(events.size(), kCapacity);
      for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(static_cast<EventKind>(events[i].kind),
                  EventKind::kOptConflict);
        EXPECT_EQ(events[i].arg1, static_cast<std::uint32_t>(t));
        if (i > 0) {
          EXPECT_GT(events[i].arg0, events[i - 1].arg0);
        }
      }
    }
  }
  for (auto& th : writers) th.join();

  const TraceSnapshot snap = session.drain();
  ASSERT_EQ(snap.threads.size(), static_cast<std::size_t>(kThreads));
  for (const ThreadTrace& t : snap.threads) {
    EXPECT_EQ(t.recorded, kEvents);
    EXPECT_EQ(t.dropped, kEvents - kCapacity);
    ASSERT_EQ(t.events.size(), kCapacity);
    EXPECT_EQ(t.events.back().arg0, kEvents - 1);
  }
}

class RoundRobinStrategy final : public schedule::Strategy {
 public:
  std::optional<schedule::Slot> pick(
      const std::vector<schedule::Slot>& eligible,
      const std::vector<schedule::Decision>& history) override {
    return eligible[history.size() % eligible.size()];
  }
};

struct ScheduledRun {
  std::vector<schedule::Slot> trace;
  std::vector<std::vector<Event>> rings;
};

ScheduledRun run_writers_under_scheduler(int nthreads, int events_per_thread) {
  TelemetrySession session(/*ring_capacity=*/256);
  RoundRobinStrategy strategy;
  schedule::VirtualScheduler::Config cfg;
  cfg.nthreads = nthreads;
  schedule::VirtualScheduler sched(cfg, strategy);

  std::vector<std::thread> threads;
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&, t] {
      sched.attach(t);
      EventRing* ring = session.attach(static_cast<ThreadId>(t));
      sched.setup_done(t);
      for (int i = 0; i < events_per_thread; ++i) {
        ring->record(EventKind::kDepEdge, static_cast<std::uint64_t>(i),
                     static_cast<std::uint32_t>(t));
        schedule::point();
      }
      sched.detach(t);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(sched.status(), schedule::VirtualScheduler::RunStatus::kComplete);

  ScheduledRun out;
  out.trace = sched.trace();
  for (int t = 0; t < nthreads; ++t) {
    out.rings.push_back(session.attach(static_cast<ThreadId>(t))->snapshot());
  }
  return out;
}

// The same seedless strategy must produce bit-identical interleavings and
// ring contents (modulo timestamps) across runs — writers interleaved by the
// virtual scheduler never corrupt each other's rings.
TEST(ConcurrentWriters, DeterministicUnderVirtualScheduler) {
  constexpr int kThreads = 3;
  constexpr int kEvents = 40;
  const ScheduledRun a = run_writers_under_scheduler(kThreads, kEvents);
  const ScheduledRun b = run_writers_under_scheduler(kThreads, kEvents);

  EXPECT_EQ(a.trace, b.trace);
  ASSERT_EQ(a.rings.size(), static_cast<std::size_t>(kThreads));
  for (int t = 0; t < kThreads; ++t) {
    const auto& ra = a.rings[static_cast<std::size_t>(t)];
    const auto& rb = b.rings[static_cast<std::size_t>(t)];
    ASSERT_EQ(ra.size(), static_cast<std::size_t>(kEvents));
    ASSERT_EQ(rb.size(), ra.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].arg0, static_cast<std::uint64_t>(i));
      EXPECT_EQ(ra[i].arg0, rb[i].arg0);
      EXPECT_EQ(ra[i].arg1, rb[i].arg1);
      EXPECT_EQ(ra[i].kind, rb[i].kind);
      EXPECT_EQ(ra[i].seq, rb[i].seq);
    }
  }
}

// --- session / snapshot ------------------------------------------------------

TEST(TelemetrySession, AttachIsIdempotentPerThreadId) {
  TelemetrySession session(16);
  EventRing* a = session.attach(3);
  EventRing* b = session.attach(3);
  EXPECT_EQ(a, b);
  a->record(EventKind::kPsro, 1);

  const TraceSnapshot snap = session.snapshot();
  ASSERT_EQ(snap.threads.size(), 1u);
  EXPECT_EQ(snap.threads[0].tid, 3u);
  EXPECT_EQ(snap.threads[0].events.size(), 1u);
  EXPECT_GT(snap.cycles_per_second, 0.0);
}

TEST(TraceSnapshot, MergedSortsByTimestampAndRebaseFindsMinimum) {
  TraceSnapshot snap;
  ThreadTrace t0;
  t0.tid = 0;
  t0.events = {make_event(EventKind::kPsro, 500),
               make_event(EventKind::kPsro, 900)};
  ThreadTrace t1;
  t1.tid = 1;
  t1.events = {make_event(EventKind::kDepEdge, 300),
               make_event(EventKind::kDepEdge, 700)};
  snap.threads = {t0, t1};
  snap.rebase();
  EXPECT_EQ(snap.base_tsc, 300u);
  EXPECT_EQ(snap.total_events(), 4u);

  const std::vector<Event> merged = snap.merged();
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].tsc, 300u);
  EXPECT_EQ(merged[1].tsc, 500u);
  EXPECT_EQ(merged[2].tsc, 700u);
  EXPECT_EQ(merged[3].tsc, 900u);
}

// --- trace file I/O ----------------------------------------------------------

TraceSnapshot sample_snapshot() {
  TraceSnapshot snap;
  snap.cycles_per_second = 2.5e9;
  snap.base_tsc = 1000;
  ThreadTrace t;
  t.tid = 4;
  t.recorded = 7;
  t.dropped = 4;
  t.events = {make_event(EventKind::kCoordRoundTrip, 2000, 500, 1, 1, 4),
              make_event(EventKind::kOptConflict, 3000, 0, 0xabc, kFlagStore,
                         4),
              make_event(EventKind::kRegionRestart, 4000, 12345, 2, 0, 4)};
  snap.threads.push_back(std::move(t));
  return snap;
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const std::string path = temp_path("ht_trace_roundtrip.bin");
  const TraceSnapshot snap = sample_snapshot();
  ASSERT_TRUE(save_trace(snap, path));

  TraceSnapshot loaded;
  ASSERT_EQ(load_trace(path, loaded), TraceLoadResult::kOk);
  EXPECT_EQ(loaded.cycles_per_second, snap.cycles_per_second);
  EXPECT_EQ(loaded.base_tsc, snap.base_tsc);
  ASSERT_EQ(loaded.threads.size(), 1u);
  const ThreadTrace& t = loaded.threads[0];
  EXPECT_EQ(t.tid, 4u);
  EXPECT_EQ(t.recorded, 7u);
  EXPECT_EQ(t.dropped, 4u);
  ASSERT_EQ(t.events.size(), 3u);
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    const Event& a = snap.threads[0].events[i];
    const Event& b = t.events[i];
    EXPECT_EQ(a.tsc, b.tsc);
    EXPECT_EQ(a.arg0, b.arg0);
    EXPECT_EQ(a.arg1, b.arg1);
    EXPECT_EQ(a.arg2, b.arg2);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.tid, b.tid);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, ReportsWhyAFileWasRejected) {
  const std::string good = temp_path("ht_trace_good.bin");
  ASSERT_TRUE(save_trace(sample_snapshot(), good));
  std::string bytes;
  {
    std::ifstream in(good, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 16u);

  TraceSnapshot out;
  EXPECT_EQ(load_trace(temp_path("ht_no_such_trace.bin"), out),
            TraceLoadResult::kOpenFailed);

  const std::string bad = temp_path("ht_trace_bad.bin");
  auto write_file = [&](const std::string& content) {
    std::ofstream f(bad, std::ios::binary | std::ios::trunc);
    f.write(content.data(), static_cast<std::streamsize>(content.size()));
  };

  write_file("XXXX" + bytes.substr(4));
  EXPECT_EQ(load_trace(bad, out), TraceLoadResult::kBadMagic);

  std::string bad_version = bytes;
  bad_version[4] = '\x7f';
  write_file(bad_version);
  EXPECT_EQ(load_trace(bad, out), TraceLoadResult::kBadVersion);

  write_file(bytes.substr(0, bytes.size() / 2));
  EXPECT_EQ(load_trace(bad, out), TraceLoadResult::kTruncated);

  write_file(bytes + "Z");
  EXPECT_EQ(load_trace(bad, out), TraceLoadResult::kCorrupt);

  EXPECT_STREQ(trace_load_result_name(TraceLoadResult::kTruncated),
               "truncated");
  std::remove(good.c_str());
  std::remove(bad.c_str());
}

// --- metric aggregation ------------------------------------------------------

TEST(Metrics, AggregateFoldsEventsIntoCountersAndHistograms) {
  TraceSnapshot snap;
  ThreadTrace t;
  t.tid = 0;
  t.dropped = 5;
  t.events = {
      make_event(EventKind::kCoordRoundTrip, 1, 100, 1, 1),  // implicit
      make_event(EventKind::kCoordRoundTrip, 2, 50, 2, 0),
      make_event(EventKind::kOptConflict, 3, 0, 10,
                 kFlagExplicit | kFlagWentPess),
      make_event(EventKind::kOptConflict, 4, 0, 11, 0),
      make_event(EventKind::kPessAcquire, 5, 0, 10, kFlagContended),
      make_event(EventKind::kPessAcquire, 6, 0, 10, kFlagReentrant),
      make_event(EventKind::kPessWait, 7, 10, 10, 0),
      make_event(EventKind::kPolicyPessToOpt, 8, 0, 10, 0),
      make_event(EventKind::kRegionRestart, 9, 1000, 0, 0),
      make_event(EventKind::kDepEdge, 10, 3, 1, 0),
      make_event(EventKind::kPsro, 11, 1, 0, 0),
      make_event(EventKind::kSafePointResponse, 12, 2, 0, 0),
      make_event(EventKind::kDeferredFlush, 13, 6, 0, 0),
      make_event(EventKind::kLeaseExpired, 14, 3, 42, 4096),
      make_event(EventKind::kQuarantine, 15, 3, 9, 2),
      make_event(EventKind::kSeizure, 16, 500, 10, 3),
      make_event(EventKind::kSeizure, 17, 30, 11, 3),
      make_event(EventKind::kGovernorFlip, 18, 1, 2, 0),
  };
  snap.threads.push_back(std::move(t));

  MetricsRegistry reg = aggregate_metrics(snap);
  EXPECT_EQ(reg.counter("ht_events_total"), 18u);
  EXPECT_EQ(reg.counter("ht_events_dropped_total"), 5u);
  EXPECT_EQ(reg.counter("ht_coord_roundtrips_total"), 2u);
  EXPECT_EQ(reg.counter("ht_coord_implicit_total"), 1u);
  EXPECT_EQ(reg.counter("ht_opt_conflicts_total"), 2u);
  EXPECT_EQ(reg.counter("ht_opt_conflicts_explicit_total"), 1u);
  EXPECT_EQ(reg.counter("ht_pess_acquires_total"), 2u);
  EXPECT_EQ(reg.counter("ht_pess_contended_total"), 1u);
  EXPECT_EQ(reg.counter("ht_policy_opt_to_pess_total"), 1u);
  EXPECT_EQ(reg.counter("ht_policy_pess_to_opt_total"), 1u);
  EXPECT_EQ(reg.counter("ht_region_restarts_total"), 1u);
  EXPECT_EQ(reg.counter("ht_dep_edges_total"), 1u);
  EXPECT_EQ(reg.counter("ht_psros_total"), 1u);
  EXPECT_EQ(reg.counter("ht_safepoint_responses_total"), 1u);
  EXPECT_EQ(reg.counter("ht_deferred_flushes_total"), 1u);

  EXPECT_EQ(reg.histogram("ht_coord_roundtrip_cycles").count(), 2u);
  EXPECT_EQ(reg.histogram("ht_coord_roundtrip_cycles").sum(), 150u);
  EXPECT_EQ(reg.histogram("ht_coord_roundtrip_cycles").max(), 100u);
  EXPECT_EQ(reg.histogram("ht_pess_wait_cycles").count(), 1u);
  EXPECT_EQ(reg.histogram("ht_pess_wait_cycles").sum(), 10u);
  EXPECT_EQ(reg.histogram("ht_region_restart_cycles").sum(), 1000u);

  // Resilience events (DESIGN.md §11): counted per kind, seizure latency
  // folded into its own log2 histogram.
  EXPECT_EQ(reg.counter("ht_lease_expiries_total"), 1u);
  EXPECT_EQ(reg.counter("ht_quarantines_total"), 1u);
  EXPECT_EQ(reg.counter("ht_seizures_total"), 2u);
  EXPECT_EQ(reg.counter("ht_governor_flips_total"), 1u);
  EXPECT_EQ(reg.histogram("ht_seizure_cycles").count(), 2u);
  EXPECT_EQ(reg.histogram("ht_seizure_cycles").sum(), 530u);
  EXPECT_EQ(reg.histogram("ht_seizure_cycles").max(), 500u);
}

TEST(Metrics, AggregateCountsSpansAndDwellCycles) {
  TraceSnapshot snap;
  ThreadTrace t;
  t.tid = 0;
  const auto wrex = static_cast<std::uint8_t>(StateKind::kWrExOpt);
  const auto intk = static_cast<std::uint8_t>(StateKind::kInt);
  const auto rdsh = static_cast<std::uint8_t>(StateKind::kRdShOpt);
  t.events = {
      make_event(EventKind::kCoordRequest, 10, 1, 1, 0),
      make_event(EventKind::kCoordBatchDrain, 20, 7, 2, 4),
      // The dwell clock starts at an object's FIRST transition (when it
      // entered WrEx is unknowable from this trace), so WrEx accrues
      // nothing: object 42 dwells 200 cycles in Int, and the open RdSh
      // interval extends to the last trace timestamp (400).
      make_event(EventKind::kStateTransition, 100,
                 pack_transition(wrex, intk), 42),
      make_event(EventKind::kStateTransition, 300,
                 pack_transition(intk, rdsh), 42),
      make_event(EventKind::kThreadExit, 400, 0, 0, 0),
  };
  snap.threads.push_back(std::move(t));
  snap.rebase();

  MetricsRegistry reg = aggregate_metrics(snap);
  EXPECT_EQ(reg.counter("ht_coord_requests_total"), 1u);
  EXPECT_EQ(reg.counter("ht_coord_batch_drains_total"), 1u);
  EXPECT_EQ(reg.counter("ht_state_transitions_total"), 2u);
  EXPECT_EQ(reg.counter("ht_dwell_wrex_cycles_total"), 0u);
  EXPECT_EQ(reg.counter("ht_dwell_int_cycles_total"), 200u);
  EXPECT_EQ(reg.counter("ht_dwell_rdsh_cycles_total"), 100u);
  EXPECT_EQ(reg.counter("ht_dwell_rdex_cycles_total"), 0u);
  EXPECT_EQ(reg.counter("ht_dwell_pess_cycles_total"), 0u);
}

// --- exporter golden strings -------------------------------------------------

MetricsRegistry demo_registry() {
  MetricsRegistry reg;
  reg.counter("ht_demo_total", "demo counter") = 3;
  LatencyHistogram& h = reg.histogram("ht_demo_cycles", "demo latency");
  h.add(1);
  h.add(5);
  return reg;
}

TEST(MetricsExport, GoldenJson) {
  const std::string expected =
      "{\"counters\":{\"ht_demo_total\":3},"
      "\"histograms\":{\"ht_demo_cycles\":{"
      "\"count\":2,\"sum\":6,\"max\":5,"
      "\"buckets\":[{\"le\":0,\"count\":0},{\"le\":1,\"count\":1},"
      "{\"le\":3,\"count\":1},{\"le\":7,\"count\":2}]}}}";
  EXPECT_EQ(demo_registry().to_json(), expected);

  json::Value parsed;
  EXPECT_TRUE(json::parse(demo_registry().to_json(), parsed));
  EXPECT_EQ(parsed.at("counters").at("ht_demo_total").as_u64(), 3u);
}

TEST(MetricsExport, GoldenPrometheus) {
  const std::string expected =
      "# HELP ht_demo_total demo counter\n"
      "# TYPE ht_demo_total counter\n"
      "ht_demo_total 3\n"
      "# HELP ht_demo_cycles demo latency\n"
      "# TYPE ht_demo_cycles histogram\n"
      "ht_demo_cycles_bucket{le=\"0\"} 0\n"
      "ht_demo_cycles_bucket{le=\"1\"} 1\n"
      "ht_demo_cycles_bucket{le=\"3\"} 1\n"
      "ht_demo_cycles_bucket{le=\"7\"} 2\n"
      "ht_demo_cycles_bucket{le=\"+Inf\"} 2\n"
      "ht_demo_cycles_sum 6\n"
      "ht_demo_cycles_count 2\n";
  EXPECT_EQ(demo_registry().to_prometheus(), expected);
}

TEST(ChromeTrace, GoldenOutput) {
  TraceSnapshot snap;
  snap.cycles_per_second = 1e6;  // 1 cycle == 1 us: durations read literally
  snap.base_tsc = 100;
  ThreadTrace t;
  t.tid = 1;
  t.recorded = 2;
  t.events = {make_event(EventKind::kPsro, 100, 7, 0, 0, 1),
              make_event(EventKind::kCoordRoundTrip, 150, 30, 2, 1, 1)};
  snap.threads.push_back(std::move(t));

  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"hybrid-tracking\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"T1\"}},"
      "{\"name\":\"psro\",\"cat\":\"runtime\",\"pid\":1,\"tid\":1,"
      "\"ph\":\"i\",\"s\":\"t\",\"ts\":0.000,\"args\":{\"arg0\":7}},"
      "{\"name\":\"coord_round_trip\",\"cat\":\"runtime\",\"pid\":1,"
      "\"tid\":1,\"ph\":\"X\",\"ts\":20.000,\"dur\":30.000,"
      "\"args\":{\"cycles\":30,\"owner_tid\":2,\"implicit\":true}}]}";
  EXPECT_EQ(to_chrome_trace_json(snap), expected);

  std::size_t events = 0;
  std::string error;
  EXPECT_TRUE(validate_chrome_trace(expected, &events, &error)) << error;
  EXPECT_EQ(events, 4u);
}

TEST(ChromeTrace, ResilienceEventsGolden) {
  TraceSnapshot snap;
  snap.cycles_per_second = 1e6;  // 1 cycle == 1 us
  snap.base_tsc = 100;
  ThreadTrace t;
  t.tid = 1;
  t.recorded = 4;
  t.events = {make_event(EventKind::kLeaseExpired, 110, 2, 7, 4096, 1),
              make_event(EventKind::kQuarantine, 120, 2, 9, 3, 1),
              make_event(EventKind::kSeizure, 180, 40, 5, 2, 1),
              make_event(EventKind::kGovernorFlip, 200, 1, 2, 0, 1)};
  snap.threads.push_back(std::move(t));

  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"hybrid-tracking\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"T1\"}},"
      "{\"name\":\"lease_expired\",\"cat\":\"resilience\",\"pid\":1,"
      "\"tid\":1,\"ph\":\"i\",\"s\":\"t\",\"ts\":10.000,"
      "\"args\":{\"owner_tid\":2,\"ticket\":7,\"stalled_epochs\":4096}},"
      "{\"name\":\"quarantine\",\"cat\":\"resilience\",\"pid\":1,"
      "\"tid\":1,\"ph\":\"i\",\"s\":\"t\",\"ts\":20.000,"
      "\"args\":{\"victim_tid\":2,\"status_epoch\":9,"
      "\"tickets_released\":3}},"
      "{\"name\":\"seizure\",\"cat\":\"resilience\",\"pid\":1,\"tid\":1,"
      "\"ph\":\"X\",\"ts\":40.000,\"dur\":40.000,"
      "\"args\":{\"cycles\":40,\"object\":5,\"victim_tid\":2}},"
      "{\"name\":\"governor_flip\",\"cat\":\"resilience\",\"pid\":1,"
      "\"tid\":1,\"ph\":\"i\",\"s\":\"t\",\"ts\":100.000,"
      "\"args\":{\"degraded\":true,\"storm_windows\":2,"
      "\"calm_windows\":0}}]}";
  EXPECT_EQ(to_chrome_trace_json(snap), expected);

  std::size_t events = 0;
  std::string error;
  EXPECT_TRUE(validate_chrome_trace(expected, &events, &error)) << error;
  EXPECT_EQ(events, 6u);
}

TEST(ChromeTrace, ValidatorRejectsGarbage) {
  std::size_t events = 0;
  std::string error;
  EXPECT_FALSE(validate_chrome_trace("not json", &events, &error));
  EXPECT_FALSE(validate_chrome_trace("[]", &events, &error));
  EXPECT_FALSE(validate_chrome_trace("{\"traceEvents\":5}", &events, &error));
  EXPECT_FALSE(validate_chrome_trace(
      "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"pid\":1,\"tid\":0,"
      "\"ts\":0,\"dur\":-1}]}",
      &events, &error));
  EXPECT_FALSE(error.empty());
}

// --- hot-object report -------------------------------------------------------

TEST(HotObjects, RanksByTotalConflicts) {
  TraceSnapshot snap;
  ThreadTrace t;
  t.tid = 0;
  t.events = {
      make_event(EventKind::kOptConflict, 1, 0, 0xA, 0),
      make_event(EventKind::kOptConflict, 2, 0, 0xA, kFlagExplicit),
      make_event(EventKind::kPessAcquire, 3, 0, 0xA, kFlagContended),
      make_event(EventKind::kPessWait, 4, 10, 0xB, 0),
      make_event(EventKind::kPessWait, 5, 20, 0xB, 0),
      make_event(EventKind::kPessAcquire, 6, 0, 0xC, 0),  // uncontended
  };
  snap.threads.push_back(std::move(t));

  const std::vector<HotObject> ranked = hot_objects(snap, 10);
  ASSERT_EQ(ranked.size(), 2u);  // 0xC never conflicted
  EXPECT_EQ(ranked[0].object, 0xAu);
  EXPECT_EQ(ranked[0].opt_conflicts, 2u);
  EXPECT_EQ(ranked[0].pess_contended, 1u);
  EXPECT_EQ(ranked[1].object, 0xBu);
  EXPECT_EQ(ranked[1].pess_contended, 2u);

  EXPECT_EQ(hot_objects(snap, 1).size(), 1u);
  const std::string report = hot_object_report(snap, 10);
  EXPECT_NE(report.find("0000000a"), std::string::npos);
}

// --- zero-cost-off contract --------------------------------------------------

// A real workload run with a session installed on the runtime. With
// HT_TELEMETRY=ON the trackers/runtime emit events and the exported Chrome
// trace validates; in a default build the same run records exactly zero
// events — the macros compiled to ((void)0) and only the empty rings remain.
TEST(TelemetryWorkload, RecordsEventsExactlyWhenCompiledIn) {
  WorkloadConfig cfg;
  cfg.name = "telemetry-test";
  cfg.threads = 4;
  cfg.ops_per_thread = 4'000;
  cfg.hotsync_p100k = 10'000;
  cfg.hotracy_p100k = 2'000;
  WorkloadData data(cfg);

  TelemetrySession session;
  RuntimeConfig rc;
  rc.telemetry = &session;
  Runtime rt(rc);
  HybridTracker<> trk(rt, HybridConfig{});
  const WorkloadRunResult r = run_workload(cfg, data, [&](ThreadId) {
    return DirectApi<HybridTracker<>>(rt, trk);
  });
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GE(r.join_skew_seconds, 0.0);

  const TraceSnapshot snap = session.drain();
#if HT_TELEM_AVAILABLE
  // At minimum every thread recorded its start and exit.
  EXPECT_GE(snap.total_events(), 2u * cfg.threads);
  bool saw_thread_start = false;
  for (const ThreadTrace& t : snap.threads) {
    for (const Event& e : t.events) {
      if (static_cast<EventKind>(e.kind) == EventKind::kThreadStart) {
        saw_thread_start = true;
      }
    }
  }
  EXPECT_TRUE(saw_thread_start);

  const std::string chrome = to_chrome_trace_json(snap);
  std::size_t events = 0;
  std::string error;
  EXPECT_TRUE(validate_chrome_trace(chrome, &events, &error)) << error;
  EXPECT_GT(events, 0u);

  const MetricsRegistry reg = aggregate_metrics(snap);
  json::Value parsed;
  EXPECT_TRUE(json::parse(reg.to_json(), parsed));
#else
  // Zero-cost-off witness: the instrumented hot paths produced no events.
  EXPECT_EQ(snap.total_events(), 0u);
  EXPECT_EQ(snap.total_dropped(), 0u);
#endif
}

}  // namespace
}  // namespace ht::telemetry
