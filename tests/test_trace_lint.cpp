// The recorded-trace lint: cross-thread dependence checks on in-memory
// recordings, file-level lint with loader-failure exit-code mapping, and
// graceful degradation for pre-stamping (all-zero response) recordings.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "analysis/trace_lint.hpp"
#include "recorder/recording_io.hpp"

namespace ht {
namespace {

using analysis::lint_recording;
using analysis::lint_recording_file;
using analysis::LintResult;

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// T0 responds (stamps 1, 2); T1 waited for T0's counter to reach 1.
Recording genuine_recording() {
  Recording r;
  r.threads.resize(2);
  r.threads[0].events.push_back({3, LogEventType::kResponse, kNoThread, 1});
  r.threads[0].events.push_back({8, LogEventType::kResponse, kNoThread, 2});
  r.threads[1].events.push_back({5, LogEventType::kEdge, 0, 1});
  return r;
}

TEST(TraceLint, GenuineRecordingPasses) {
  const LintResult r = lint_recording(genuine_recording());
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_EQ(r.graph_nodes, 3u);
  EXPECT_EQ(r.graph_arcs, 1u);  // T0's response(1) -> T1's edge
  EXPECT_FALSE(r.salvaged_prefix);
}

TEST(TraceLint, StructuralFailureShortCircuits) {
  Recording r;
  r.threads.resize(1);
  r.threads[0].events.push_back({0, LogEventType::kEdge, 0, 1});  // self-edge
  const LintResult lint = lint_recording(r);
  EXPECT_FALSE(lint.ok());
  EXPECT_FALSE(lint.structure.ok());
  EXPECT_TRUE(lint.issues.empty());  // graph checks skipped
  EXPECT_EQ(lint.graph_nodes, 0u);
}

TEST(TraceLint, FlagsNonMonotoneResponseStamps) {
  Recording r;
  r.threads.resize(1);
  r.threads[0].events.push_back({1, LogEventType::kResponse, kNoThread, 3});
  r.threads[0].events.push_back({2, LogEventType::kResponse, kNoThread, 1});
  const LintResult lint = lint_recording(r);
  EXPECT_FALSE(lint.ok());
  ASSERT_FALSE(lint.issues.empty());
  EXPECT_NE(lint.issues[0].message.find("strictly increasing"),
            std::string::npos);
}

TEST(TraceLint, FlagsDecreasingEdgeValuesPerSource) {
  Recording r;
  r.threads.resize(2);
  r.threads[1].events.push_back({1, LogEventType::kEdge, 0, 5});
  r.threads[1].events.push_back({2, LogEventType::kEdge, 0, 3});
  const LintResult lint = lint_recording(r);
  EXPECT_FALSE(lint.ok());
  ASSERT_EQ(lint.issues.size(), 1u);
  EXPECT_EQ(lint.issues[0].thread, 1u);
  EXPECT_EQ(lint.issues[0].event, 1u);
  EXPECT_NE(lint.issues[0].message.find("edge value decreases"),
            std::string::npos);
}

// Mutual waiting that no real-time execution can produce: each thread's
// edge requires the other's response, and each response comes AFTER the
// edge in its own program order.
TEST(TraceLint, FlagsDependenceCycle) {
  Recording r;
  r.threads.resize(2);
  r.threads[0].events.push_back({1, LogEventType::kEdge, 1, 1});
  r.threads[0].events.push_back({2, LogEventType::kResponse, kNoThread, 1});
  r.threads[1].events.push_back({1, LogEventType::kEdge, 0, 1});
  r.threads[1].events.push_back({2, LogEventType::kResponse, kNoThread, 1});
  const LintResult lint = lint_recording(r);
  EXPECT_FALSE(lint.ok());
  ASSERT_FALSE(lint.issues.empty());
  EXPECT_NE(lint.issues[0].message.find("cycle"), std::string::npos)
      << lint.to_string();
}

// The same shape is fine when the responses precede the edges: the arcs all
// point forward and a topological order exists.
TEST(TraceLint, AcceptsAcyclicCrossDependences) {
  Recording r;
  r.threads.resize(2);
  r.threads[0].events.push_back({1, LogEventType::kResponse, kNoThread, 1});
  r.threads[0].events.push_back({2, LogEventType::kEdge, 1, 1});
  r.threads[1].events.push_back({1, LogEventType::kResponse, kNoThread, 1});
  r.threads[1].events.push_back({2, LogEventType::kEdge, 0, 1});
  const LintResult lint = lint_recording(r);
  EXPECT_TRUE(lint.ok()) << lint.to_string();
  EXPECT_EQ(lint.graph_arcs, 2u);
}

// Pre-stamping recordings carry value 0 on every response: no response
// participates in the graph and the checks pass vacuously.
TEST(TraceLint, LegacyZeroStampsDegradeGracefully) {
  Recording r;
  r.threads.resize(2);
  r.threads[0].events.push_back({1, LogEventType::kResponse, kNoThread, 0});
  r.threads[1].events.push_back({2, LogEventType::kEdge, 0, 9});
  const LintResult lint = lint_recording(r);
  EXPECT_TRUE(lint.ok()) << lint.to_string();
  EXPECT_EQ(lint.graph_arcs, 0u);
}

// Mixed legacy/v2 logs (a v1 recording re-saved by a v2 writer, or a run
// spanning a recorder upgrade) interleave unknown-stamp (0) bumps with
// stamped ones. The zero stamps must not trip the strict-increase check,
// but they still count as bumps for the stamp-vs-bump-count rule.
TEST(TraceLint, MixedLegacyAndStampedBumpsPass) {
  Recording r;
  r.threads.resize(2);
  r.threads[0].events.push_back({1, LogEventType::kResponse, kNoThread, 0});
  r.threads[0].events.push_back({3, LogEventType::kResponse, kNoThread, 2});
  r.threads[0].events.push_back({5, LogEventType::kRegionEnd, kNoThread, 0});
  r.threads[0].events.push_back({7, LogEventType::kRegionEnd, kNoThread, 4});
  // The edge anchors to the stamp-2 response; the unknown-stamp bumps do
  // not participate in the graph.
  r.threads[1].events.push_back({2, LogEventType::kEdge, 0, 2});
  const LintResult lint = lint_recording(r);
  EXPECT_TRUE(lint.ok()) << lint.to_string();
  EXPECT_EQ(lint.graph_arcs, 1u);
}

// The 3rd bump of a thread cannot leave the counter at 2: stamped values
// must be at least the bump ordinal even when earlier stamps are unknown.
TEST(TraceLint, FlagsStampBelowBumpOrdinal) {
  Recording r;
  r.threads.resize(1);
  r.threads[0].events.push_back({1, LogEventType::kResponse, kNoThread, 0});
  r.threads[0].events.push_back({2, LogEventType::kResponse, kNoThread, 1});
  r.threads[0].events.push_back({4, LogEventType::kRegionEnd, kNoThread, 2});
  const LintResult lint = lint_recording(r);
  EXPECT_FALSE(lint.ok());
  ASSERT_FALSE(lint.issues.empty());
  EXPECT_NE(lint.issues[0].message.find("below the response count"),
            std::string::npos)
      << lint.to_string();
}

TEST(TraceLint, SalvagedFlagSurfacesInReport) {
  const LintResult lint = lint_recording(genuine_recording(), /*salvaged=*/true);
  EXPECT_TRUE(lint.ok());  // the checks themselves still pass
  EXPECT_TRUE(lint.salvaged_prefix);
  EXPECT_NE(lint.to_string().find("salvaged"), std::string::npos);
}

// ---- file-level lint + exit-code mapping ------------------------------------

TEST(TraceLintFile, CleanFileRoundTrips) {
  const std::string path = temp_path("ht_lint_clean.bin");
  ASSERT_TRUE(save_recording(genuine_recording(), path));
  const auto r = lint_recording_file(path);
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_EQ(exit_code_for(r.load.error), kExitOk);
  std::remove(path.c_str());
}

TEST(TraceLintFile, CorruptedFileMapsToChecksumExitCode) {
  const std::string path = temp_path("ht_lint_corrupt.bin");
  ASSERT_TRUE(save_recording(genuine_recording(), path));
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(32);  // inside the first chunk, past the v2 header (20 bytes)
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(32);
    byte = static_cast<char>(byte ^ 0x5a);
    f.write(&byte, 1);
  }
  const auto r = lint_recording_file(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.load.error, RecordingLoadError::kChecksum);
  EXPECT_EQ(exit_code_for(r.load.error), kExitChecksum);
  // A valid prefix was salvaged and linted, flagged as partial.
  if (r.load.recording.has_value()) {
    EXPECT_TRUE(r.load.partial);
    EXPECT_TRUE(r.lint.salvaged_prefix);
  }
  std::remove(path.c_str());
}

TEST(TraceLintFile, BadMagicMapsToExitCode) {
  const std::string path = temp_path("ht_lint_badmagic.bin");
  std::ofstream(path, std::ios::binary) << "not a recording at all";
  const auto r = lint_recording_file(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(exit_code_for(r.load.error), kExitBadMagic);
  std::remove(path.c_str());
}

TEST(TraceLintFile, MissingFileMapsToIoExitCode) {
  const auto r = lint_recording_file("/nonexistent/dir/nothing.bin");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(exit_code_for(r.load.error), kExitIo);
}

TEST(ExitCodes, DistinctAndStable) {
  EXPECT_EQ(exit_code_for(RecordingLoadError::kNone), 0);
  EXPECT_EQ(exit_code_for(RecordingLoadError::kBadMagic), 2);
  EXPECT_EQ(exit_code_for(RecordingLoadError::kBadVersion), 3);
  EXPECT_EQ(exit_code_for(RecordingLoadError::kTruncated), 4);
  EXPECT_EQ(exit_code_for(RecordingLoadError::kChecksum), 5);
  EXPECT_EQ(exit_code_for(RecordingLoadError::kIo), 6);
  // Structure/lint rejections use their own documented codes.
  EXPECT_EQ(kExitStructure, 7);
  EXPECT_EQ(kExitLint, 8);
  EXPECT_EQ(kExitUnserializable, 9);
  EXPECT_EQ(kExitUsage, 1);
}

}  // namespace
}  // namespace ht
