// Object-granularity tracking (TrackedObject<T, N>): all fields share one
// state word, so same-object accesses to different fields behave exactly
// like same-field accesses at the metadata level — including the paper's
// object-level data races (Fig 2(b): "not necessarily the same field").
#include "tracking/tracked_object.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "enforcer/rs_enforcer.hpp"
#include "test_util.hpp"
#include "tracking/hybrid_tracker.hpp"
#include "tracking/optimistic_tracker.hpp"

namespace ht {
namespace {

using testing::state_is;

TEST(TrackedObject, FieldsShareOneStateWord) {
  Runtime rt;
  OptimisticTracker<true> tracker(rt);
  ThreadContext& t0 = rt.register_thread();
  TrackedObject<std::uint64_t, 4> obj;
  obj.init(tracker, t0, 7);

  obj.store_field(tracker, t0, 0, 1);
  obj.store_field(tracker, t0, 3, 2);
  (void)obj.load_field(tracker, t0, 2);
  // All same-state: one object, one owner.
  EXPECT_EQ(t0.stats.opt_same, 3u);
  EXPECT_TRUE(state_is(obj.meta(), StateKind::kWrExOpt, t0.id));
  EXPECT_EQ(obj.raw_field(0), 1u);
  EXPECT_EQ(obj.raw_field(1), 7u);
  EXPECT_EQ(obj.raw_field(3), 2u);
}

TEST(TrackedObject, DifferentFieldsByDifferentThreadsConflictAtObjectLevel) {
  // The object-level race of Fig 2(b): T1 writes field 0, T2 reads field 1 —
  // different fields, but ONE state word, so T2's access is a conflicting
  // transition.
  Runtime rt;
  OptimisticTracker<true> tracker(rt);
  ThreadContext& t0 = rt.register_thread();
  TrackedObject<std::uint64_t, 2> obj;
  obj.init(tracker, t0, 0);
  obj.store_field(tracker, t0, 0, 42);

  rt.begin_blocking(t0);
  ThreadContext& t1 = rt.register_thread();
  EXPECT_EQ(obj.load_field(tracker, t1, 1), 0u);  // different field!
  EXPECT_EQ(t1.stats.opt_conflicting(), 1u);
  EXPECT_TRUE(state_is(obj.meta(), StateKind::kRdExOpt, t1.id));
  rt.end_blocking(t0);
}

TEST(TrackedObject, HybridPessimisticLockCoversWholeObject) {
  Runtime rt;
  HybridTracker<true> tracker(rt, HybridConfig{});
  ThreadContext& t0 = rt.register_thread();
  tracker.attach_thread(t0);
  TrackedObject<std::uint64_t, 3> obj;
  obj.init(tracker, t0, 0);
  obj.meta().reset(StateWord::wr_ex_pess(t0.id));

  obj.store_field(tracker, t0, 0, 1);  // locks the object
  ASSERT_TRUE(state_is(obj.meta(), StateKind::kWrExWLock, t0.id));
  // Accesses to OTHER fields are reentrant under the same lock.
  obj.store_field(tracker, t0, 1, 2);
  (void)obj.load_field(tracker, t0, 2);
  EXPECT_EQ(t0.stats.pess_reentrant, 2u);
  tracker.flush(t0);
  EXPECT_TRUE(state_is(obj.meta(), StateKind::kWrExPess, t0.id));
}

TEST(TrackedObject, RegionRollbackRestoresEveryField) {
  Runtime rt;
  HybridTracker<> tracker(rt, HybridConfig{});
  RsEnforcer<HybridTracker<>> enforcer(rt, tracker);
  ThreadContext& ctx = rt.register_thread();
  enforcer.attach_thread(ctx);
  TrackedObject<std::uint64_t, 2> obj;
  obj.init(tracker, ctx, 10);

  // Simulate a region that writes both fields and rolls back.
  UndoLog log;
  ctx.undo_log = &log;
  obj.store_field(tracker, ctx, 0, 100);
  obj.store_field(tracker, ctx, 1, 200);
  ctx.undo_log = nullptr;
  EXPECT_EQ(obj.raw_field(0), 100u);
  log.rollback();
  EXPECT_EQ(obj.raw_field(0), 10u);
  EXPECT_EQ(obj.raw_field(1), 10u);
}

TEST(TrackedObject, ObjectLevelRaceTriggersContendedPessimistic) {
  // Two threads hammer DIFFERENT fields of one pessimistic object with no
  // synchronization: object-level (though not field-level) races, which the
  // hybrid model resolves via contended transitions + coordination.
  Runtime rt;
  HybridTracker<true> tracker(rt, HybridConfig{});
  TrackedObject<std::uint64_t, 2> obj;

  constexpr int kOps = 2'000;
  std::atomic<int> ready{0};
  TransitionStats stats[2];
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      ThreadContext& ctx = rt.register_thread();
      tracker.attach_thread(ctx);
      if (t == 0) {
        obj.init(tracker, ctx, 0);
        obj.meta().reset(StateWord::wr_ex_pess(0));
      }
      ready.fetch_add(1);
      while (ready.load() < 2) std::this_thread::yield();
      for (int i = 0; i < kOps; ++i) {
        obj.store_field(tracker, ctx, static_cast<std::size_t>(t),
                        static_cast<std::uint64_t>(i));
        rt.poll(ctx);
        if (i % 8 == 0) std::this_thread::yield();
      }
      stats[t] = ctx.stats;
      rt.unregister_thread(ctx);
    });
  }
  for (auto& th : threads) th.join();
  // Each thread's final field value stands (no cross-field corruption).
  EXPECT_EQ(obj.raw_field(0), static_cast<std::uint64_t>(kOps - 1));
  EXPECT_EQ(obj.raw_field(1), static_cast<std::uint64_t>(kOps - 1));
  // And the object-level race materialized as contended transitions and/or
  // optimistic conflicts (scheduling decides the exact mix).
  const std::uint64_t cross = stats[0].pess_contended + stats[1].pess_contended +
                              stats[0].opt_conflicting() +
                              stats[1].opt_conflicting();
  EXPECT_GT(cross, 0u);
}

}  // namespace
}  // namespace ht
