// Differential tracker fuzzer: seeded random programs executed under the
// virtual scheduler against all four tracker families — pessimistic,
// optimistic, hybrid, and the coordination-eliding ideal study variant —
// asserting that every family lands the IDENTICAL final memory state and the
// IDENTICAL per-object race verdicts.
//
// The oracle is made schedule-independent by construction so "identical"
// is decidable without enumerating interleavings:
//   * every store to object o writes the same per-object constant C(o), so
//     the final value of a stored object is C(o) under ANY interleaving and
//     any tracker — a mismatch means a tracker corrupted program memory
//     (lost update, misdirected undo, bad seizure landing);
//   * each program is either fully SYNCHRONIZED (objects private to one
//     thread or guarded by their own program lock — zero races expected in
//     every schedule) or lock-free RACY (private objects plus objects two
//     threads store with no synchronization — exactly those objects race).
//     The modes never mix: a lock edge between two threads would
//     happens-before-order an unrelated "racy" pair in some schedules and
//     make the verdict interleaving-dependent;
//   * PSROs and blocking windows are sprinkled in to move release counters
//     and exercise implicit coordination without touching the oracle.
//
// On mismatch the failing PROGRAM SEED is printed (plus the schedule trace
// via the explorer violation), so a failure reproduces with a one-line
// filter: --gtest_filter=TrackerDifferentialP.* plus the seed in the log.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/xorshift.hpp"
#include "schedule/explorer.hpp"
#include "schedule/program.hpp"

namespace ht::schedule {
namespace {

constexpr Family kFamilies[] = {Family::kPessimistic, Family::kOptimistic,
                                Family::kHybrid, Family::kIdeal};

// What every family must agree on for one generated program.
struct DifferentialOracle {
  std::vector<std::uint64_t> final_values;  // per object: C(o) or 0
  std::uint64_t racy_mask = 0;              // bit o set iff o must race
};

// Per-object constant store value: nonzero and distinct enough that a
// misdirected store is visible as the wrong constant, not just a flag.
std::uint64_t obj_constant(std::uint64_t seed, int obj) {
  return (seed * 2654435761u + static_cast<std::uint64_t>(obj) * 97u) %
             60000u +
         1u;
}

struct GeneratedProgram {
  Program prog;
  DifferentialOracle oracle;
};

// Seeded random differential program. Three object roles:
//   private  — accessed by exactly one thread (fast-path traffic),
//   locked   — shared, every access bracketed by the object's own lock
//              (synchronized programs only),
//   racy     — two distinct threads store it unlocked, with no locks
//              anywhere in the program (racy programs only).
GeneratedProgram make_differential_program(std::uint64_t seed, int nthreads,
                                           int objects, int ops_per_thread) {
  Xoshiro256 rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  const bool racy_mode = rng.chance(1, 2);
  GeneratedProgram g;
  g.prog.objects = objects;
  g.prog.threads.assign(static_cast<std::size_t>(nthreads), {});
  g.oracle.final_values.assign(static_cast<std::size_t>(objects), 0);

  enum class Role : std::uint8_t { kPrivate, kLocked, kRacy };
  std::vector<Role> role(static_cast<std::size_t>(objects));
  std::vector<int> owner_a(static_cast<std::size_t>(objects), 0);
  std::vector<int> owner_b(static_cast<std::size_t>(objects), 0);
  std::vector<int> lock_of(static_cast<std::size_t>(objects), -1);

  for (int o = 0; o < objects; ++o) {
    const auto oi = static_cast<std::size_t>(o);
    if (rng.chance(1, 3)) {
      role[oi] = Role::kPrivate;
    } else {
      role[oi] = racy_mode ? Role::kRacy : Role::kLocked;
    }
    owner_a[oi] = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(nthreads)));
    owner_b[oi] = (owner_a[oi] + 1 +
                   static_cast<int>(rng.next_below(
                       static_cast<std::uint64_t>(nthreads - 1)))) %
                  nthreads;
    g.prog.init.push_back(ObjInit{owner_a[oi], false});
    if (role[oi] == Role::kLocked) {
      lock_of[oi] = g.prog.locks++;
    }
    if (role[oi] == Role::kRacy) {
      // Both sides are guaranteed one unlocked store below, so the race
      // verdict is independent of the explored interleaving.
      g.oracle.racy_mask |= 1ULL << o;
    }
  }

  const std::uint64_t C = seed;
  auto emit_access = [&](int t, int o, bool store) {
    const auto oi = static_cast<std::size_t>(o);
    std::vector<Op>& ops = g.prog.threads[static_cast<std::size_t>(t)];
    if (role[oi] == Role::kLocked) {
      ops.push_back(Op{OpKind::kLockAcquire, 0, lock_of[oi], 0});
    }
    if (store) {
      ops.push_back(Op{OpKind::kStore, o, 0, obj_constant(C, o)});
      g.oracle.final_values[oi] = obj_constant(C, o);
    } else {
      ops.push_back(Op{OpKind::kLoad, o, 0, 0});
    }
    if (role[oi] == Role::kLocked) {
      ops.push_back(Op{OpKind::kLockRelease, 0, lock_of[oi], 0});
    }
  };

  // Guaranteed accesses first: every racy object is stored by both of its
  // threads; every locked object is touched by both (one writer, one
  // reader) so the lock actually synchronizes cross-thread traffic.
  for (int o = 0; o < objects; ++o) {
    const auto oi = static_cast<std::size_t>(o);
    if (role[oi] == Role::kRacy) {
      emit_access(owner_a[oi], o, /*store=*/true);
      emit_access(owner_b[oi], o, /*store=*/true);
    } else if (role[oi] == Role::kLocked) {
      emit_access(owner_a[oi], o, /*store=*/true);
      emit_access(owner_b[oi], o, /*store=*/false);
    }
  }

  // Random filler: per-thread op mix over the roles that thread may touch.
  for (int t = 0; t < nthreads; ++t) {
    std::vector<Op>& ops = g.prog.threads[static_cast<std::size_t>(t)];
    int budget = ops_per_thread;
    while (budget-- > 0) {
      const std::uint64_t pick = rng.next_below(8);
      if (pick == 6) {
        ops.push_back(Op{OpKind::kPsro, 0, 0, 0});
        continue;
      }
      if (pick == 7) {
        ops.push_back(Op{OpKind::kBlockWindow, 0, 0, 0});
        continue;
      }
      const int o = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(objects)));
      const auto oi = static_cast<std::size_t>(o);
      const bool store = rng.chance(3, 8);
      switch (role[oi]) {
        case Role::kPrivate:
          if (t != owner_a[oi]) continue;  // budget spent, access skipped
          emit_access(t, o, store);
          break;
        case Role::kLocked:
          emit_access(t, o, store);
          break;
        case Role::kRacy:
          // Only the two designated threads touch it, and only with the
          // constant store (loads would not change the verdict, but keeping
          // the access set minimal keeps the oracle obviously right).
          if (t != owner_a[oi] && t != owner_b[oi]) continue;
          emit_access(t, o, /*store=*/true);
          break;
      }
    }
  }
  return g;
}

std::string values_to_string(const std::vector<std::uint64_t>& v) {
  std::string s = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) s += ", ";
    s += std::to_string(v[i]);
  }
  return s + "]";
}

// One family's agreed-on result for a program: filled by the first complete
// run, then every later run (and every other family) must match it.
struct FamilyVerdict {
  bool filled = false;
  std::vector<std::uint64_t> final_values;
  std::uint64_t racy_mask = 0;
};

struct DifferentialShard {
  std::uint64_t first_seed;
  std::uint64_t n_seeds;
};

class TrackerDifferentialP
    : public ::testing::TestWithParam<DifferentialShard> {};

TEST_P(TrackerDifferentialP, AllFamiliesAgreeOnMemoryAndRaces) {
  const DifferentialShard shard = GetParam();
  for (std::uint64_t seed = shard.first_seed;
       seed < shard.first_seed + shard.n_seeds; ++seed) {
    const int nthreads = 2 + static_cast<int>(seed % 2);
    const int objects = 4 + static_cast<int>((seed / 2) % 3);
    const GeneratedProgram g =
        make_differential_program(seed, nthreads, objects,
                                  /*ops_per_thread=*/8);

    FamilyVerdict verdicts[4];
    for (std::size_t fi = 0; fi < 4; ++fi) {
      const Family family = kFamilies[fi];
      Explorer ex(family, nthreads);
      ex.run_config().race_detect = true;
      FamilyVerdict& v = verdicts[fi];
      ex.check_policy().extra = [&](const RunResult& r) -> std::string {
        if (r.final_values != g.oracle.final_values) {
          return "differential seed " + std::to_string(seed) + " (" +
                 family_name(family) + "): final memory " +
                 values_to_string(r.final_values) + " != expected " +
                 values_to_string(g.oracle.final_values);
        }
        if (r.racy_object_mask != g.oracle.racy_mask) {
          return "differential seed " + std::to_string(seed) + " (" +
                 family_name(family) + "): racy mask " +
                 std::to_string(r.racy_object_mask) + " != expected " +
                 std::to_string(g.oracle.racy_mask);
        }
        if (!v.filled) {
          v.filled = true;
          v.final_values = r.final_values;
          v.racy_mask = r.racy_object_mask;
        }
        return "";
      };
      const ExploreOutcome out =
          ex.explore_fuzz(g.prog, /*seed=*/seed * 1315423911ULL + fi,
                          /*schedules=*/6, /*preemption_bound=*/3);
      if (out.violation) {
        ADD_FAILURE() << "differential fuzzer seed " << seed << " family "
                      << family_name(family) << " (" << nthreads << "t/"
                      << objects << "o)\n"
                      << out.violation->to_string();
        return;  // one reproducer at a time beats a wall of follow-on noise
      }
      ASSERT_TRUE(v.filled) << "seed " << seed << ": no complete run for "
                            << family_name(family);
    }

    // Cross-family identity (each already matched the oracle; this states
    // the differential property directly and catches an oracle bug too).
    for (std::size_t fi = 1; fi < 4; ++fi) {
      EXPECT_EQ(verdicts[fi].final_values, verdicts[0].final_values)
          << "seed " << seed << ": " << family_name(kFamilies[fi]) << " vs "
          << family_name(kFamilies[0]);
      EXPECT_EQ(verdicts[fi].racy_mask, verdicts[0].racy_mask)
          << "seed " << seed << ": " << family_name(kFamilies[fi]) << " vs "
          << family_name(kFamilies[0]);
    }
  }
}

// Elision family (DESIGN.md §15): the race-checked differential runs above
// force the ownership cache off (RaceDetector::attach_thread stores the kill
// switch), so they never exercise the elided paths. This variant drops the
// detector, runs each sound family with elision on AND off, and requires the
// final memory to match the schedule-independent oracle both ways — a lost
// update or stale-ownership write on the elided path shows up as the wrong
// per-object constant.
class ElisionDifferentialP
    : public ::testing::TestWithParam<DifferentialShard> {};

TEST_P(ElisionDifferentialP, ElidedRunsMatchTheMemoryOracle) {
  const DifferentialShard shard = GetParam();
  for (std::uint64_t seed = shard.first_seed;
       seed < shard.first_seed + shard.n_seeds; ++seed) {
    const int nthreads = 2 + static_cast<int>(seed % 2);
    const int objects = 4 + static_cast<int>((seed / 2) % 3);
    const GeneratedProgram g =
        make_differential_program(seed, nthreads, objects,
                                  /*ops_per_thread=*/8);

    for (const Family family : {Family::kOptimistic, Family::kHybrid}) {
      for (const bool elision : {true, false}) {
        Explorer ex(family, nthreads);
        ex.run_config().elision = elision;
        ex.check_policy().extra = [&](const RunResult& r) -> std::string {
          if (r.final_values != g.oracle.final_values) {
            return "elision differential seed " + std::to_string(seed) +
                   " (" + family_name(family) +
                   ", elision=" + (elision ? "on" : "off") +
                   "): final memory " + values_to_string(r.final_values) +
                   " != expected " +
                   values_to_string(g.oracle.final_values);
          }
          return "";
        };
        const ExploreOutcome out =
            ex.explore_fuzz(g.prog, /*seed=*/seed * 2654435761ULL + elision,
                            /*schedules=*/4, /*preemption_bound=*/3);
        if (out.violation) {
          ADD_FAILURE() << "elision differential seed " << seed << " family "
                        << family_name(family) << " elision="
                        << (elision ? "on" : "off") << "\n"
                        << out.violation->to_string();
          return;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ElisionDifferentialP,
    ::testing::Values(DifferentialShard{0, 24}, DifferentialShard{24, 24},
                      DifferentialShard{48, 24}, DifferentialShard{72, 24}),
    [](const ::testing::TestParamInfo<DifferentialShard>& shard_info) {
      return "s" + std::to_string(shard_info.param.first_seed) + "_" +
             std::to_string(shard_info.param.first_seed +
                            shard_info.param.n_seeds - 1);
    });

// 8 shards x 32 seeds = 256 program seeds, each cross-checked over 4
// families x 6 fuzzed schedules (6144 executions) — sharded so `ctest -j`
// spreads the work.
INSTANTIATE_TEST_SUITE_P(
    Seeds, TrackerDifferentialP,
    ::testing::Values(DifferentialShard{0, 32}, DifferentialShard{32, 32},
                      DifferentialShard{64, 32}, DifferentialShard{96, 32},
                      DifferentialShard{128, 32}, DifferentialShard{160, 32},
                      DifferentialShard{192, 32}, DifferentialShard{224, 32}),
    [](const ::testing::TestParamInfo<DifferentialShard>& shard_info) {
      return "s" + std::to_string(shard_info.param.first_seed) + "_" +
             std::to_string(shard_info.param.first_seed +
                            shard_info.param.n_seeds - 1);
    });

}  // namespace
}  // namespace ht::schedule
