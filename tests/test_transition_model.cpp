// The conformance model itself: the offline exhaustive model check over
// every family, spot checks pinning known paper rows, and the shadow
// checker's violation reporting (exercised directly — the checker is always
// compiled into the library; only the tracker hooks are build-gated).
#include <gtest/gtest.h>

#include "analysis/model_check.hpp"
#include "analysis/transition_checker.hpp"
#include "analysis/transition_model.hpp"

namespace ht {
namespace {

using namespace analysis;

// The tentpole property: for every family, every enumerable key resolves
// deterministically, successors stay inside the family's state universe,
// and the deferred-unlocking invariants of §3 hold — no exceptions.
TEST(ModelCheck, AllFamiliesPassExhaustiveCheck) {
  for (const ModelCheckResult& r : check_all_models()) {
    EXPECT_TRUE(r.ok()) << tracker_family_name(r.family) << ":\n"
                        << [&] {
                             std::string all;
                             for (const std::string& v : r.violations)
                               all += "  " + v + "\n";
                             return all;
                           }();
    EXPECT_GT(r.keys_checked, 0u);
    EXPECT_GT(r.legal_transitions, 0u);
  }
}

TEST(ModelCheck, HybridKeySpaceIsExhaustive) {
  // 11 states x {read, write, unlock} x {owner, other} x 2 policies x
  // 3 WrExReadModes, doubled for RdShRLock's sole-holder split.
  const auto keys = enumerate_keys(TrackerFamily::kHybrid);
  EXPECT_EQ(keys.size(), (10u + 2u) * 3u * 2u * 2u * 3u);
}

TransitionKey key(StateKind from, AccessKind access, ActorRel rel,
                  bool sole = false, PolicyChoice policy = PolicyChoice::kOpt,
                  WrExReadMode mode = WrExReadMode::kFull) {
  TransitionKey k;
  k.from = from;
  k.access = access;
  k.rel = rel;
  k.sole_holder = sole;
  k.policy = policy;
  k.mode = mode;
  return k;
}

// Spot checks pinning the model to rows a reader can find in the paper.
TEST(TransitionModel, PinsKnownTable3Rows) {
  // WrExPess read by its owner: mode decides the lock taken (§7.1).
  Outcome o = transition_outcome(
      TrackerFamily::kHybrid, key(StateKind::kWrExPess, AccessKind::kRead,
                                  ActorRel::kOwner));
  EXPECT_EQ(o.kind, OutcomeKind::kTransition);
  EXPECT_EQ(o.to, StateKind::kWrExRLock);
  EXPECT_EQ(o.mechanism, Mechanism::kCas);
  EXPECT_TRUE(o.enters_lock_buffer);
  EXPECT_TRUE(o.enters_rd_set);

  o = transition_outcome(
      TrackerFamily::kHybrid,
      key(StateKind::kWrExPess, AccessKind::kRead, ActorRel::kOwner, false,
          PolicyChoice::kOpt, WrExReadMode::kOmitWrExRLock));
  EXPECT_EQ(o.to, StateKind::kWrExWLock);
  EXPECT_FALSE(o.enters_rd_set);

  // Sole RdShRLock holder upgrades in place; with other holders it contends.
  o = transition_outcome(TrackerFamily::kHybrid,
                         key(StateKind::kRdShRLock, AccessKind::kWrite,
                             ActorRel::kOwner, /*sole=*/true));
  EXPECT_EQ(o.to, StateKind::kWrExWLock);
  o = transition_outcome(TrackerFamily::kHybrid,
                         key(StateKind::kRdShRLock, AccessKind::kWrite,
                             ActorRel::kOwner, /*sole=*/false));
  EXPECT_EQ(o.kind, OutcomeKind::kContended);

  // Every access observing Int waits (Fig 1 line 18).
  o = transition_outcome(TrackerFamily::kHybrid,
                         key(StateKind::kInt, AccessKind::kRead,
                             ActorRel::kOther));
  EXPECT_EQ(o.kind, OutcomeKind::kContended);

  // Optimistic conflicting transitions land per the adaptive policy.
  o = transition_outcome(TrackerFamily::kHybrid,
                         key(StateKind::kWrExOpt, AccessKind::kWrite,
                             ActorRel::kOther, false, PolicyChoice::kPess));
  EXPECT_EQ(o.to, StateKind::kWrExWLock);
  EXPECT_TRUE(o.begins_coordination);
  EXPECT_EQ(o.mechanism, Mechanism::kCoordination);

  // The ideal tracker elides the coordination (that is what makes it a
  // limit study, and unsound).
  o = transition_outcome(TrackerFamily::kIdeal,
                         key(StateKind::kWrExOpt, AccessKind::kWrite,
                             ActorRel::kOther));
  EXPECT_EQ(o.mechanism, Mechanism::kCas);
  EXPECT_FALSE(o.begins_coordination);
}

TEST(TransitionModel, UnlockRowsExistOnlyForLockedStates) {
  for (StateKind s : family_states(TrackerFamily::kHybrid)) {
    const Outcome o = transition_outcome(
        TrackerFamily::kHybrid, key(s, AccessKind::kUnlock, ActorRel::kOwner));
    const bool locked =
        s == StateKind::kWrExWLock || s == StateKind::kWrExRLock ||
        s == StateKind::kRdExRLock || s == StateKind::kRdShRLock;
    EXPECT_EQ(o.kind != OutcomeKind::kIllegal, locked) << state_kind_name(s);
  }
}

// The shadow checker validates a conforming observation and flags a
// nonconforming one, counting both.
TEST(TransitionChecker, CountsChecksAndViolations) {
  set_abort_on_violation(false);
  reset_transition_counters();

  TransitionObs obs;
  obs.family = TrackerFamily::kHybrid;
  obs.actor = 0;
  obs.from = StateWord::wr_ex_pess(0);
  obs.to = StateWord::wr_ex_rlock(0);
  obs.access = AccessKind::kRead;
  obs.rel = ActorRel::kOwner;
  obs.taken = Mechanism::kCas;
  obs.in_lock_buffer = true;
  obs.in_rd_set = true;
  check_transition(obs);
  EXPECT_EQ(transition_checks(), 1u);
  EXPECT_EQ(transition_violations(), 0u);

  // Same key, wrong successor: the full model must read-lock, not
  // write-lock (that is the kOmitWrExRLock prototype's behavior).
  obs.to = StateWord::wr_ex_wlock(0);
  obs.in_rd_set = false;
  check_transition(obs);
  EXPECT_EQ(transition_checks(), 2u);
  EXPECT_EQ(transition_violations(), 1u);

  // A key the model calls contended must not commit a transition at all...
  obs.from = StateWord::intermediate(1);
  obs.to = StateWord::wr_ex_opt(0);
  obs.rel = ActorRel::kOther;
  check_transition(obs);
  EXPECT_EQ(transition_violations(), 2u);

  // ...and check_contended accepts exactly that key.
  reset_transition_counters();
  check_contended(obs);
  EXPECT_EQ(transition_checks(), 1u);
  EXPECT_EQ(transition_violations(), 0u);

  reset_transition_counters();
  set_abort_on_violation(true);
}

}  // namespace
}  // namespace ht
