// TransitionStats aggregation (per-thread counters merged after joins) and
// the Table-2-style row formatter.
#include <gtest/gtest.h>

#include "tracking/transition_stats.hpp"

namespace ht {
namespace {

TransitionStats filled(std::uint64_t base) {
  TransitionStats s;
  s.opt_same = base + 1;
  s.opt_upgrading = base + 2;
  s.opt_fence = base + 3;
  s.opt_confl_explicit = base + 4;
  s.opt_confl_implicit = base + 5;
  s.pess_uncontended = base + 6;
  s.pess_reentrant = base + 7;
  s.pess_contended = base + 8;
  s.opt_to_pess = base + 9;
  s.pess_to_opt = base + 10;
  s.pess_alone_same = base + 11;
  s.pess_alone_cross = base + 12;
  s.coordination_rounds = base + 13;
  s.responding_safepoints = base + 14;
  s.psros = base + 15;
  s.region_restarts = base + 16;
  return s;
}

TEST(TransitionStats, PlusEqualsAggregatesEveryField) {
  TransitionStats a = filled(0);
  const TransitionStats b = filled(100);
  TransitionStats& ret = a += b;
  EXPECT_EQ(&ret, &a);  // chains

  EXPECT_EQ(a.opt_same, 1u + 101u);
  EXPECT_EQ(a.opt_upgrading, 2u + 102u);
  EXPECT_EQ(a.opt_fence, 3u + 103u);
  EXPECT_EQ(a.opt_confl_explicit, 4u + 104u);
  EXPECT_EQ(a.opt_confl_implicit, 5u + 105u);
  EXPECT_EQ(a.pess_uncontended, 6u + 106u);
  EXPECT_EQ(a.pess_reentrant, 7u + 107u);
  EXPECT_EQ(a.pess_contended, 8u + 108u);
  EXPECT_EQ(a.opt_to_pess, 9u + 109u);
  EXPECT_EQ(a.pess_to_opt, 10u + 110u);
  EXPECT_EQ(a.pess_alone_same, 11u + 111u);
  EXPECT_EQ(a.pess_alone_cross, 12u + 112u);
  EXPECT_EQ(a.coordination_rounds, 13u + 113u);
  EXPECT_EQ(a.responding_safepoints, 14u + 114u);
  EXPECT_EQ(a.psros, 15u + 115u);
  EXPECT_EQ(a.region_restarts, 16u + 116u);

  // The merged counters keep the derived quantities consistent.
  EXPECT_EQ(a.opt_conflicting(), a.opt_confl_explicit + a.opt_confl_implicit);
  EXPECT_EQ(a.opt_total(),
            a.opt_same + a.opt_upgrading + a.opt_fence + a.opt_conflicting());
  EXPECT_EQ(a.pess_total(), a.pess_uncontended + a.pess_contended);
  EXPECT_EQ(a.accesses(), a.opt_total() + a.pess_total() + a.pess_alone_same +
                              a.pess_alone_cross);
}

TEST(TransitionStats, PlusEqualsWithZeroIsIdentity) {
  TransitionStats a = filled(7);
  const TransitionStats before = a;
  a += TransitionStats{};
  EXPECT_EQ(a.opt_same, before.opt_same);
  EXPECT_EQ(a.accesses(), before.accesses());
  EXPECT_EQ(a.region_restarts, before.region_restarts);
}

TEST(TransitionStats, ReentrantFraction) {
  TransitionStats s;
  EXPECT_EQ(s.reentrant_fraction(), 0.0);  // no division by zero
  s.pess_uncontended = 8;
  s.pess_reentrant = 2;
  EXPECT_DOUBLE_EQ(s.reentrant_fraction(), 0.25);
}

TEST(TransitionStats, Table2RowFormatsCounters) {
  TransitionStats s;
  s.opt_same = 1'200'000;  // formatted in scientific notation
  s.opt_confl_explicit = 30;
  s.opt_confl_implicit = 12;  // opt_conflicting = 42
  s.pess_uncontended = 4;
  s.pess_reentrant = 2;  // 50%
  s.pess_contended = 9;
  s.opt_to_pess = 3;
  s.pess_to_opt = 0;

  const std::string row = s.table2_row();
  EXPECT_NE(row.find("1.2e6"), std::string::npos) << row;
  EXPECT_NE(row.find("42"), std::string::npos) << row;
  EXPECT_NE(row.find("50%"), std::string::npos) << row;
  EXPECT_NE(row.find("9"), std::string::npos) << row;

  // Column order is opt-same, opt-confl, pess-uncont, %reent, pess-cont.
  EXPECT_LT(row.find("1.2e6"), row.find("42")) << row;
  EXPECT_LT(row.find("42"), row.find("50%")) << row;
}

TEST(TransitionStats, Table2RowAllZeros) {
  const std::string row = TransitionStats{}.table2_row();
  EXPECT_NE(row.find('0'), std::string::npos);
  EXPECT_NE(row.find("0%"), std::string::npos) << row;
}

// --- JSON round trip ----------------------------------------------------------

TEST(TransitionStats, JsonRoundTripPreservesEveryCounter) {
  const TransitionStats original = filled(1000);
  const std::optional<TransitionStats> back =
      TransitionStats::from_json(original.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->opt_same, original.opt_same);
  EXPECT_EQ(back->opt_upgrading, original.opt_upgrading);
  EXPECT_EQ(back->opt_fence, original.opt_fence);
  EXPECT_EQ(back->opt_confl_explicit, original.opt_confl_explicit);
  EXPECT_EQ(back->opt_confl_implicit, original.opt_confl_implicit);
  EXPECT_EQ(back->pess_uncontended, original.pess_uncontended);
  EXPECT_EQ(back->pess_reentrant, original.pess_reentrant);
  EXPECT_EQ(back->pess_contended, original.pess_contended);
  EXPECT_EQ(back->opt_to_pess, original.opt_to_pess);
  EXPECT_EQ(back->pess_to_opt, original.pess_to_opt);
  EXPECT_EQ(back->pess_alone_same, original.pess_alone_same);
  EXPECT_EQ(back->pess_alone_cross, original.pess_alone_cross);
  EXPECT_EQ(back->coordination_rounds, original.coordination_rounds);
  EXPECT_EQ(back->responding_safepoints, original.responding_safepoints);
  EXPECT_EQ(back->psros, original.psros);
  EXPECT_EQ(back->region_restarts, original.region_restarts);
}

TEST(TransitionStats, FromJsonToleratesUnknownAndMissingKeys) {
  const std::optional<TransitionStats> s = TransitionStats::from_json(
      "{\"opt_same\":5,\"future_counter\":99}");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->opt_same, 5u);
  EXPECT_EQ(s->pess_contended, 0u);  // absent keys default to zero
}

TEST(TransitionStats, FromJsonRejectsGarbage) {
  EXPECT_FALSE(TransitionStats::from_json("not json").has_value());
  EXPECT_FALSE(TransitionStats::from_json("[1,2,3]").has_value());
  EXPECT_FALSE(
      TransitionStats::from_json("{\"opt_same\":\"five\"}").has_value());
}

}  // namespace
}  // namespace ht
