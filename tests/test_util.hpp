// Shared test helpers.
//
// Many tracker transitions require a remote thread to participate in
// coordination. For deterministic unit tests we exploit the paper's implicit
// coordination: a context parked at a blocking safe point responds to every
// request implicitly, so a single OS thread can drive multi-thread protocol
// paths by registering extra contexts and blocking them.
#pragma once

#include <gtest/gtest.h>

#include "runtime/runtime.hpp"
#include "tracking/tracked_var.hpp"

namespace ht {
namespace testing {

// Registers a context and parks it BLOCKED until destruction (or release()).
class BlockedThread {
 public:
  explicit BlockedThread(Runtime& rt) : rt_(&rt), ctx_(&rt.register_thread()) {
    rt_->begin_blocking(*ctx_);
  }
  ~BlockedThread() {
    if (blocked_) rt_->end_blocking(*ctx_);
  }
  BlockedThread(const BlockedThread&) = delete;
  BlockedThread& operator=(const BlockedThread&) = delete;

  ThreadContext& ctx() { return *ctx_; }

  // Wake the context up (it becomes a normal running context).
  void wake() {
    if (blocked_) {
      rt_->end_blocking(*ctx_);
      blocked_ = false;
    }
  }
  void block_again() {
    if (!blocked_) {
      rt_->begin_blocking(*ctx_);
      blocked_ = true;
    }
  }

 private:
  Runtime* rt_;
  ThreadContext* ctx_;
  bool blocked_ = true;
};

// Asserts an object's state kind (and owner when applicable).
inline ::testing::AssertionResult state_is(const ObjectMeta& m, StateKind kind,
                                           ThreadId tid = kNoThread) {
  const StateWord s = m.load_state();
  if (s.kind() != kind) {
    return ::testing::AssertionFailure()
           << "state is " << s.to_string() << ", expected kind "
           << state_kind_name(kind);
  }
  if (tid != kNoThread && s.tid() != tid) {
    return ::testing::AssertionFailure()
           << "state is " << s.to_string() << ", expected owner T" << tid;
  }
  return ::testing::AssertionSuccess();
}

}  // namespace testing
}  // namespace ht
