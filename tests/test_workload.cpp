// Workload-layer tests: plan determinism (the replayer's foundation), driver
// behavior, microbenchmark correctness under program locks, and the headline
// behavioral property from Table 2 — hybrid tracking eliminates most
// conflicting transitions on synchronized-conflict workloads.
#include <gtest/gtest.h>

#include "tracking/hybrid_tracker.hpp"
#include "tracking/ideal_tracker.hpp"
#include "tracking/null_tracker.hpp"
#include "tracking/optimistic_tracker.hpp"
#include "tracking/pessimistic_tracker.hpp"
#include "workload/apis.hpp"
#include "workload/microbench.hpp"
#include "workload/profiles.hpp"

namespace ht {
namespace {

TEST(RegionPlan, DeterministicPerSeed) {
  WorkloadConfig cfg;
  cfg.hotsync_p100k = 5'000;
  Xoshiro256 r1(42), r2(42);
  for (int i = 0; i < 1000; ++i) {
    const RegionPlan a = plan_region(r1, cfg);
    const RegionPlan b = plan_region(r2, cfg);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.accesses, b.accesses);
    for (std::uint32_t j = 0; j < a.accesses; ++j) {
      EXPECT_EQ(a.obj_sel[j], b.obj_sel[j]);
      EXPECT_EQ(a.is_write[j], b.is_write[j]);
      EXPECT_EQ(a.wr_val[j], b.wr_val[j]);
    }
  }
}

TEST(RegionPlan, KindWeightsRoughlyRespected) {
  WorkloadConfig cfg;
  cfg.readshare_p100k = 10'000;  // 10%
  cfg.sharedgen_p100k = 5'000;   // 5%
  cfg.hotsync_p100k = 1'000;     // 1%
  Xoshiro256 rng(7);
  int counts[6] = {};
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<int>(plan_region(rng, cfg).kind)];
  }
  EXPECT_NEAR(counts[static_cast<int>(RegionKind::kReadShare)] / double(n),
              0.10, 0.01);
  EXPECT_NEAR(counts[static_cast<int>(RegionKind::kSharedGen)] / double(n),
              0.05, 0.01);
  EXPECT_NEAR(counts[static_cast<int>(RegionKind::kHotSync)] / double(n),
              0.01, 0.005);
  EXPECT_EQ(counts[static_cast<int>(RegionKind::kHotRacy)], 0);
}

TEST(WorkloadDriver, SingleThreadChecksumIsTrackerIndependent) {
  // With one thread there are no cross-thread effects, so every tracker must
  // observe identical loaded values.
  WorkloadConfig cfg;
  cfg.threads = 1;
  cfg.ops_per_thread = 4'000;
  cfg.hotsync_p100k = 1'000;
  WorkloadData data(cfg);

  std::vector<std::uint64_t> checksums;
  {
    Runtime rt;
    NullTracker trk(rt);
    checksums.push_back(run_workload(cfg, data, [&](ThreadId) {
                          return DirectApi<NullTracker>(rt, trk);
                        }).checksums[0]);
  }
  {
    Runtime rt;
    PessimisticTracker<> trk(rt);
    checksums.push_back(run_workload(cfg, data, [&](ThreadId) {
                          return DirectApi<PessimisticTracker<>>(rt, trk);
                        }).checksums[0]);
  }
  {
    Runtime rt;
    OptimisticTracker<> trk(rt);
    checksums.push_back(run_workload(cfg, data, [&](ThreadId) {
                          return DirectApi<OptimisticTracker<>>(rt, trk);
                        }).checksums[0]);
  }
  {
    Runtime rt;
    HybridTracker<> trk(rt, HybridConfig{});
    checksums.push_back(run_workload(cfg, data, [&](ThreadId) {
                          return DirectApi<HybridTracker<>>(rt, trk);
                        }).checksums[0]);
  }
  {
    Runtime rt;
    IdealTracker<> trk(rt);
    checksums.push_back(run_workload(cfg, data, [&](ThreadId) {
                          return DirectApi<IdealTracker<>>(rt, trk);
                        }).checksums[0]);
  }
  for (std::size_t i = 1; i < checksums.size(); ++i) {
    EXPECT_EQ(checksums[0], checksums[i]) << "tracker " << i;
  }
}

TEST(WorkloadDriver, MultithreadedRunCompletesUnderEveryTracker) {
  WorkloadConfig cfg;
  cfg.threads = 4;
  cfg.ops_per_thread = 4'000;
  cfg.hotsync_p100k = 1'000;
  cfg.hotracy_p100k = 300;
  WorkloadData data(cfg);

  {
    Runtime rt;
    PessimisticTracker<true> trk(rt);
    const auto r = run_workload(cfg, data, [&](ThreadId) {
      return DirectApi<PessimisticTracker<true>>(rt, trk);
    });
    EXPECT_EQ(r.stats.accesses(), cfg.ops_per_thread * 4);
  }
  {
    Runtime rt;
    OptimisticTracker<true> trk(rt);
    const auto r = run_workload(cfg, data, [&](ThreadId) {
      return DirectApi<OptimisticTracker<true>>(rt, trk);
    });
    EXPECT_EQ(r.stats.accesses(), cfg.ops_per_thread * 4);
    EXPECT_GT(r.stats.opt_conflicting(), 0u);
  }
  {
    Runtime rt;
    HybridTracker<true> trk(rt, HybridConfig{});
    const auto r = run_workload(cfg, data, [&](ThreadId) {
      return DirectApi<HybridTracker<true>>(rt, trk);
    });
    EXPECT_EQ(r.stats.accesses(), cfg.ops_per_thread * 4);
  }
}

TEST(Microbench, SyncIncIsExactUnderAnyTracker) {
  // The global program lock makes the increments atomic regardless of
  // tracking; this validates ProgramLock + the microbench wiring.
  Runtime rt;
  HybridTracker<> trk(rt, HybridConfig{});
  MicrobenchData data;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kIters = 2'000;
  (void)run_microbench(
      kThreads, data,
      [&](ThreadId) { return DirectApi<HybridTracker<>>(rt, trk); },
      [&](auto& api, ThreadId) { return sync_inc_body(api, data, kIters); });
  EXPECT_EQ(data.counter.raw_load(), kThreads * kIters);
}

TEST(Table2Property, HybridEliminatesMostConflictsOnSyncWorkloads) {
  // The paper's core claim (Table 2): for high-conflict but synchronized
  // programs (xalan-like), hybrid tracking converts nearly all conflicting
  // transitions into pessimistic uncontended transitions, with few contended.
  // Conflicts concentrated on few hot objects (the Fig 6 shape) — conflicts
  // spread thin across a large pool stay below Cutoff_confl by design
  // ("if many objects each trigger only a few conflicting transitions, the
  // policy will not transfer them to pessimistic states early enough", §6.2).
  WorkloadConfig cfg;
  cfg.name = "xalan-like";
  cfg.threads = 4;
  cfg.ops_per_thread = 30'000;
  cfg.hotsync_p100k = 2'000;
  cfg.hot_objects = 8;
  cfg.sharedgen_p100k = 0;
  cfg.readshare_write_pct = 0;
  cfg.yield_every_regions = 8;  // fine interleaving on the 1-core test box
  WorkloadData data(cfg);

  std::uint64_t opt_conflicts = 0, hyb_conflicts = 0, hyb_pess = 0,
                hyb_contended = 0;
  {
    Runtime rt;
    OptimisticTracker<true> trk(rt);
    const auto r = run_workload(cfg, data, [&](ThreadId) {
      return DirectApi<OptimisticTracker<true>>(rt, trk);
    });
    opt_conflicts = r.stats.opt_conflicting();
  }
  {
    Runtime rt;
    HybridTracker<true> trk(rt, HybridConfig{});
    const auto r = run_workload(cfg, data, [&](ThreadId) {
      return DirectApi<HybridTracker<true>>(rt, trk);
    });
    hyb_conflicts = r.stats.opt_conflicting();
    hyb_pess = r.stats.pess_uncontended;
    hyb_contended = r.stats.pess_contended;
  }
  ASSERT_GT(opt_conflicts, 100u) << "workload generated too few conflicts";
  // Hybrid must eliminate the majority of conflicting transitions (the paper
  // reports 43-98% reductions for high-conflict programs).
  EXPECT_LT(hyb_conflicts, opt_conflicts / 2)
      << "opt=" << opt_conflicts << " hyb=" << hyb_conflicts;
  EXPECT_GT(hyb_pess, 0u);
  // Synchronized conflicts -> deferred unlocking -> few contended.
  EXPECT_LT(hyb_contended, hyb_pess / 10 + 10)
      << "contended=" << hyb_contended << " pess=" << hyb_pess;
}

TEST(Profiles, ThirteenPaperProfilesExist) {
  const auto v = paper_profiles();
  ASSERT_EQ(v.size(), 13u);
  EXPECT_STREQ(v.front().name, "eclipse6");
  EXPECT_STREQ(v.back().name, "pjbb2005");
  const auto rec = recorder_profiles();
  EXPECT_EQ(rec.size(), 12u);  // eclipse6 dropped (§7.6)
  EXPECT_STREQ(profile_by_name("xalan6").name, "xalan6");
}

TEST(Profiles, ScaleMultipliesOps) {
  const auto a = profile_by_name("xalan6", 1.0);
  const auto b = profile_by_name("xalan6", 2.0);
  EXPECT_EQ(b.ops_per_thread, 2 * a.ops_per_thread);
}

TEST(Profiles, FindProfileReportsUnknownNamesWithoutAborting) {
  EXPECT_TRUE(find_profile("avrora9").has_value());
  EXPECT_FALSE(find_profile("no-such-profile").has_value());
  const std::string names = known_profile_names();
  for (const auto& c : paper_profiles()) {
    EXPECT_NE(names.find(c.name), std::string::npos) << c.name;
  }
  const std::string msg = unknown_profile_message("no-such-profile");
  EXPECT_NE(msg.find("no-such-profile"), std::string::npos);
  EXPECT_NE(msg.find("xalan6"), std::string::npos);  // lists valid names
}

}  // namespace
}  // namespace ht
