// WorkloadData mechanics: pool indexing, per-thread initialization ownership,
// the warm-up phase's effect on states, raw resets, and the conflict census.
#include <gtest/gtest.h>

#include "tracking/hybrid_tracker.hpp"
#include "tracking/null_tracker.hpp"
#include "tracking/optimistic_tracker.hpp"
#include "workload/apis.hpp"
#include "workload/workload.hpp"

namespace ht {
namespace {

WorkloadConfig small_config() {
  WorkloadConfig cfg;
  cfg.threads = 2;
  cfg.private_objects = 8;
  cfg.general_objects = 16;
  cfg.readshare_objects = 4;
  cfg.hot_objects = 2;
  cfg.locks = 4;
  return cfg;
}

TEST(WorkloadData, PoolAccessorsWrapAround) {
  const WorkloadConfig cfg = small_config();
  WorkloadData data(cfg);
  EXPECT_EQ(&data.general(0), &data.general(16));
  EXPECT_EQ(&data.readshare(1), &data.readshare(5));
  EXPECT_EQ(&data.hot(0), &data.hot(2));
  EXPECT_EQ(&data.private_obj(0, 0), &data.private_obj(0, 8));
  EXPECT_NE(&data.private_obj(0, 0), &data.private_obj(1, 0));
  EXPECT_EQ(&data.lock(0), &data.lock(4));
  EXPECT_EQ(&data.global_lock(), &data.lock(0));
}

TEST(WorkloadData, InitForThreadSplitsOwnership) {
  const WorkloadConfig cfg = small_config();
  WorkloadData data(cfg);
  Runtime rt;
  OptimisticTracker<> trk(rt);
  ThreadContext& t0 = rt.register_thread();
  ThreadContext& t1 = rt.register_thread();

  data.init_for_thread(trk, t0);
  data.init_for_thread(trk, t1);

  // Shared pools owned by thread 0; each private pool by its thread.
  EXPECT_EQ(data.general(3).meta().load_state().tid(), t0.id);
  EXPECT_EQ(data.hot(1).meta().load_state().tid(), t0.id);
  EXPECT_EQ(data.private_obj(0, 2).meta().load_state().tid(), t0.id);
  EXPECT_EQ(data.private_obj(1, 2).meta().load_state().tid(), t1.id);
}

TEST(WorkloadData, WarmupSettlesSharedStatesWithoutTimedConflicts) {
  WorkloadConfig cfg = small_config();
  cfg.ops_per_thread = 400;
  cfg.hotsync_p100k = 0;  // quiet profile: no hot regions at all
  cfg.sharedgen_p100k = 0;
  cfg.readshare_write_pct = 0;
  WorkloadData data(cfg);

  Runtime rt;
  OptimisticTracker<true> trk(rt);
  const auto r = run_workload(cfg, data, [&](ThreadId) {
    return DirectApi<OptimisticTracker<true>>(rt, trk);
  });
  // All first-touch transfers happened in the warm-up (untimed, but counted
  // in stats) — afterwards the readshare pool is read-shared.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(data.readshare(i).meta().load_state().is_rd_sh());
  }
  EXPECT_GT(r.stats.opt_same, 0u);
}

TEST(WorkloadData, RawResetClearsValuesOnly) {
  const WorkloadConfig cfg = small_config();
  WorkloadData data(cfg);
  Runtime rt;
  NullTracker trk(rt);
  ThreadContext& ctx = rt.register_thread();
  data.init_all(trk, ctx);
  data.general(0).raw_store(42);
  const StateWord before = data.general(0).meta().load_state();
  data.raw_reset_values();
  EXPECT_EQ(data.general(0).raw_load(), 0u);
  EXPECT_EQ(data.general(0).meta().load_state().raw(), before.raw());
}

TEST(WorkloadData, ConflictCensusReadsProfileWords) {
  const WorkloadConfig cfg = small_config();
  WorkloadData data(cfg);
  Runtime rt;
  NullTracker trk(rt);
  ThreadContext& ctx = rt.register_thread();
  data.init_all(trk, ctx);

  data.hot(0).meta().profile().update(
      [](ProfileWord w) { return w.with_opt_conflict_inc(); });
  const auto counts = data.per_object_conflict_counts();
  // hot pool is first in the census.
  ASSERT_GE(counts.size(), 2u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 0u);

  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  EXPECT_EQ(total, 1u);
}

TEST(WorkloadData, ForEachMetaVisitsEveryObject) {
  const WorkloadConfig cfg = small_config();
  WorkloadData data(cfg);
  std::size_t n = 0;
  data.for_each_meta([&](ObjectMeta&) { ++n; });
  // 2 threads x 8 private + 16 general + 4 readshare + 2 hot.
  EXPECT_EQ(n, 2u * 8 + 16 + 4 + 2);
}

}  // namespace
}  // namespace ht
