// bench_gate: perf-regression gate over --json bench reports.
//
// Compares one BENCH_*.json report (produced by any bench built on
// BenchJsonReport) against a committed gate spec and fails the build when a
// gated metric leaves its band. Bands are deliberately machine-independent
// where possible: RATIOS (speedup_median, batch_objects_mean, counter-derived
// values) gate with absolute min/max bounds, while raw timings gate against a
// recorded baseline with a tolerance percentage — loose enough to absorb CI
// noise, tight enough to catch a real regression.
//
// Gate spec (bench/baselines/*.json):
//   {
//     "bench": "contended_transfer",          // must match report "bench"
//     "gates": [
//       {"workload": "t8_k16_h1", "config": "batched",
//        "key": "values.speedup_median", "min": 1.10},
//       {"workload": "t8_k16_h1", "config": "batched",
//        "key": "values.batch_objects_mean", "min": 1.5, "max": 64.0},
//       {"workload": "syncInc", "config": "hybrid",
//        "key": "seconds.median", "baseline": 1.1e-3, "tol_pct": 50}
//     ]
//   }
//
// "key" is a dotted path into the matched row ("values.x", "seconds.median",
// "stats.coordination_rounds"). A gate may give min and/or max, or
// baseline+tol_pct (band = baseline * (1 ± tol_pct/100)); mixing both styles
// in one gate is rejected. A missing row or key FAILS the gate — a renamed
// workload silently dropping its gate is exactly the rot this tool exists to
// catch.
//
// Exit codes: 0 all gates pass, 1 usage error, 2 spec/report unreadable or
// malformed, 3 at least one gate failed.
//
//   build/tools/bench_gate <gate_spec.json> <bench_report.json>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace {

constexpr int kOk = 0;
constexpr int kUsage = 1;
constexpr int kBadInput = 2;
constexpr int kGateFailed = 3;

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

// Dotted-path lookup into a row object; returns nullptr when any segment is
// missing or the leaf is not a number.
const ht::json::Value* find_key(const ht::json::Value& row,
                                const std::string& dotted) {
  const ht::json::Value* cur = &row;
  std::size_t start = 0;
  while (start <= dotted.size()) {
    const std::size_t dot = dotted.find('.', start);
    const std::string seg = dotted.substr(
        start, dot == std::string::npos ? std::string::npos : dot - start);
    if (!cur->contains(seg)) return nullptr;
    cur = &cur->at(seg);
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  return cur->is_number() ? cur : nullptr;
}

const ht::json::Value* find_row(const ht::json::Value& report,
                                const std::string& workload,
                                const std::string& config) {
  for (const ht::json::Value& row : report.at("rows").as_array()) {
    if (row.at("workload").as_string() == workload &&
        row.at("config").as_string() == config) {
      return &row;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: bench_gate <gate_spec.json> <bench_report.json>\n");
    return kUsage;
  }
  const std::string spec_path = argv[1];
  const std::string report_path = argv[2];

  std::string text, err;
  ht::json::Value spec, report;
  if (!read_file(spec_path, text) || !ht::json::parse(text, spec, &err)) {
    std::fprintf(stderr, "bench_gate: cannot read spec %s: %s\n",
                 spec_path.c_str(), err.c_str());
    return kBadInput;
  }
  if (!read_file(report_path, text) || !ht::json::parse(text, report, &err)) {
    std::fprintf(stderr, "bench_gate: cannot read report %s: %s\n",
                 report_path.c_str(), err.c_str());
    return kBadInput;
  }
  if (!spec.at("bench").is_string() || !report.at("bench").is_string() ||
      spec.at("bench").as_string() != report.at("bench").as_string()) {
    std::fprintf(stderr, "bench_gate: spec is for '%s' but report is '%s'\n",
                 spec.at("bench").as_string().c_str(),
                 report.at("bench").as_string().c_str());
    return kBadInput;
  }
  if (!spec.at("gates").is_array() || spec.at("gates").as_array().empty()) {
    std::fprintf(stderr, "bench_gate: spec has no gates\n");
    return kBadInput;
  }

  std::printf("bench_gate: %s vs %s (%zu gates)\n",
              report_path.c_str(), spec_path.c_str(),
              spec.at("gates").as_array().size());
  std::printf("  %-12s %-10s %-26s %12s %26s  %s\n", "workload", "config",
              "key", "observed", "band", "verdict");

  int failures = 0;
  for (const ht::json::Value& gate : spec.at("gates").as_array()) {
    const std::string workload = gate.at("workload").as_string();
    const std::string config = gate.at("config").as_string();
    const std::string key = gate.at("key").as_string();
    const std::string where = workload + "/" + config + " " + key;

    const bool banded = gate.contains("baseline") || gate.contains("tol_pct");
    const bool bounded = gate.contains("min") || gate.contains("max");
    if (banded == bounded) {
      std::fprintf(stderr,
                   "bench_gate: gate %s must use either min/max or "
                   "baseline+tol_pct\n",
                   where.c_str());
      return kBadInput;
    }
    double lo, hi;
    char band[64];
    if (banded) {
      if (!gate.at("baseline").is_number() || !gate.at("tol_pct").is_number()) {
        std::fprintf(stderr, "bench_gate: gate %s: baseline/tol_pct must be "
                     "numbers\n", where.c_str());
        return kBadInput;
      }
      const double base = gate.at("baseline").as_double();
      const double tol = gate.at("tol_pct").as_double() / 100.0;
      lo = base * (1.0 - tol);
      hi = base * (1.0 + tol);
      std::snprintf(band, sizeof band, "%.4g ±%.0f%%", base, tol * 100.0);
    } else {
      lo = gate.contains("min") ? gate.at("min").as_double() : -1e308;
      hi = gate.contains("max") ? gate.at("max").as_double() : 1e308;
      if (gate.contains("min") && gate.contains("max")) {
        std::snprintf(band, sizeof band, "[%.4g, %.4g]", lo, hi);
      } else if (gate.contains("min")) {
        std::snprintf(band, sizeof band, ">= %.4g", lo);
      } else {
        std::snprintf(band, sizeof band, "<= %.4g", hi);
      }
    }

    const ht::json::Value* row = find_row(report, workload, config);
    const ht::json::Value* leaf = row ? find_key(*row, key) : nullptr;
    if (leaf == nullptr) {
      std::printf("  %-12s %-10s %-26s %12s %26s  FAIL (%s)\n",
                  workload.c_str(), config.c_str(), key.c_str(), "-", band,
                  row ? "key missing" : "row missing");
      ++failures;
      continue;
    }
    const double v = leaf->as_double();
    const bool pass = v >= lo && v <= hi;
    std::printf("  %-12s %-10s %-26s %12.6g %26s  %s\n", workload.c_str(),
                config.c_str(), key.c_str(), v, band, pass ? "ok" : "FAIL");
    if (!pass) ++failures;
  }

  if (failures != 0) {
    std::fprintf(stderr, "bench_gate: %d gate(s) FAILED\n", failures);
    return kGateFailed;
  }
  std::printf("bench_gate: all gates pass\n");
  return kOk;
}
