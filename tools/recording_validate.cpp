// recording_validate: loads a recording file and runs the structural
// well-formedness checks (recorder/recording_validate.hpp) — the same
// validation the replayer relies on. For the deeper cross-thread dependence
// checks use trace_lint, which layers on top of this.
//
// Exit codes are the shared ToolExitCode values (see README.md): 0 OK,
// 1 usage, 2 bad magic, 3 bad version, 4 truncated, 5 checksum mismatch,
// 6 I/O error, 7 structural validation failure.
//
//   build/tools/recording_validate [--allow-partial] <recording.bin>
#include <cstdio>
#include <cstring>
#include <string>

#include "recorder/recording_validate.hpp"

int main(int argc, char** argv) {
  bool allow_partial = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--allow-partial") == 0) {
      allow_partial = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "recording_validate: unknown option '%s'\n",
                   argv[i]);
      return ht::kExitUsage;
    } else if (path.empty()) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "recording_validate: more than one input file\n");
      return ht::kExitUsage;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: recording_validate [--allow-partial] "
                 "<recording.bin>\n");
    return ht::kExitUsage;
  }

  const ht::FileCheckResult r = ht::check_recording_file(path);
  std::printf("%s: %s\n", path.c_str(), r.to_string().c_str());

  if (!r.load.recording.has_value()) return ht::exit_code_for(r.load.error);
  if (!r.load.complete() && !allow_partial)
    return ht::exit_code_for(r.load.error);
  if (!r.structure.ok()) return ht::kExitStructure;
  return ht::kExitOk;
}
