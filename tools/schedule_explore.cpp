// schedule_explore: drives the deterministic virtual scheduler over small
// tracker programs (src/schedule/). Four modes:
//
//   --mode exhaustive   enumerate every interleaving (sleep-set pruned DFS)
//   --mode fuzz         seeded preemption-bounded schedule fuzzing
//   --mode record       execute ONE schedule (from --seed) and write its
//                       replayable trace file with --record FILE
//   --mode replay       re-execute a recorded trace file bit-identically and
//                       verify the execution digest matches the recording
//
// Programs are the named builtins (--list prints them) or chaos programs
// generated from (--program chaos --program-seed S --threads N --objects K
// --ops M) — both reconstructible from a trace file header, which is what
// makes cross-process replay possible.
//
// Every explored schedule runs against the standard oracles (state-pair
// model conformance, shadow-checker delta, final quiescence); a violation
// prints the failing schedule's seed and trace (and records it with
// --record) so it can be replayed exactly.
//
// Exit codes: 0 OK, 1 usage, 2 oracle violation found, 3 replay divergence
// or digest mismatch, 4 file I/O error.
//
// Examples:
//   schedule_explore --mode exhaustive --tracker hybrid --program ww-conflict
//   schedule_explore --mode fuzz --tracker hybrid --program chaos
//       --program-seed 7 --threads 3 --objects 4 --ops 12 --schedules 500
//   schedule_explore --mode record --program deferred-unlock --seed 42
//       --record t.trace
//   schedule_explore --mode replay --replay t.trace
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "schedule/explorer.hpp"
#include "schedule/program.hpp"
#include "schedule/virtual_scheduler.hpp"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitViolation = 2;
constexpr int kExitReplayMismatch = 3;
constexpr int kExitIo = 4;

using ht::schedule::Explorer;
using ht::schedule::Family;
using ht::schedule::Program;
using ht::schedule::RunResult;
using ht::schedule::Slot;

struct Options {
  std::string mode = "exhaustive";
  std::string tracker = "hybrid";
  std::string program = "ww-conflict";
  std::uint64_t program_seed = 1;
  int threads = 2;
  int objects = 2;
  int ops = 6;
  std::uint64_t schedules = 100000;
  std::uint64_t seed = 1;
  int preemptions = 3;
  std::uint64_t max_steps = 4096;
  std::string replay_path;
  std::string record_path;
};

// The recorded-schedule file: a line-oriented header naming everything
// needed to rebuild the identical program and tracker in another process,
// the expected execution digest, and the schedule's decision sequence.
struct TraceFile {
  std::string tracker;
  std::string program;
  std::uint64_t program_seed = 0;
  int threads = 0;
  int objects = 0;
  int ops = 0;
  std::uint64_t digest = 0;
  std::vector<Slot> trace;
};

bool write_trace_file(const std::string& path, const TraceFile& t) {
  std::ofstream out(path);
  if (!out) return false;
  out << "ht-schedule-trace v1\n";
  out << "tracker " << t.tracker << "\n";
  out << "program " << t.program << "\n";
  out << "program-seed " << t.program_seed << "\n";
  out << "threads " << t.threads << "\n";
  out << "objects " << t.objects << "\n";
  out << "ops " << t.ops << "\n";
  char hex[32];
  std::snprintf(hex, sizeof hex, "%016" PRIx64, t.digest);
  out << "digest " << hex << "\n";
  out << "trace " << ht::schedule::trace_to_string(t.trace) << "\n";
  return static_cast<bool>(out);
}

bool read_trace_file(const std::string& path, TraceFile& t,
                     std::string& err) {
  std::ifstream in(path);
  if (!in) {
    err = "cannot open " + path;
    return false;
  }
  std::string line;
  if (!std::getline(in, line) || line != "ht-schedule-trace v1") {
    err = "bad magic (want 'ht-schedule-trace v1')";
    return false;
  }
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;
    if (key == "tracker") {
      ls >> t.tracker;
    } else if (key == "program") {
      ls >> t.program;
    } else if (key == "program-seed") {
      ls >> t.program_seed;
    } else if (key == "threads") {
      ls >> t.threads;
    } else if (key == "objects") {
      ls >> t.objects;
    } else if (key == "ops") {
      ls >> t.ops;
    } else if (key == "digest") {
      std::string hex;
      ls >> hex;
      t.digest = std::strtoull(hex.c_str(), nullptr, 16);
    } else if (key == "trace") {
      Slot s;
      while (ls >> s) t.trace.push_back(s);
    } else {
      err = "unknown key '" + key + "'";
      return false;
    }
  }
  if (t.tracker.empty() || t.program.empty()) {
    err = "incomplete header";
    return false;
  }
  return true;
}

bool resolve_program(const std::string& name, std::uint64_t program_seed,
                     int threads, int objects, int ops, Program& out,
                     std::string& err) {
  if (name == "chaos") {
    out = ht::schedule::make_chaos_program(program_seed, threads, objects,
                                           ops);
    return true;
  }
  const Program* p = ht::schedule::find_builtin(name);
  if (p == nullptr) {
    err = "unknown program '" + name + "' (--list prints the builtins)";
    return false;
  }
  out = *p;
  return true;
}

void list_programs() {
  std::printf("builtin programs:\n");
  for (const ht::schedule::NamedProgram& np :
       ht::schedule::builtin_programs()) {
    std::printf("  %-16s %d thread(s), %d object(s) — %s\n", np.name.c_str(),
                np.program.nthreads(), np.program.objects, np.note);
  }
  std::printf(
      "  %-16s generated from --program-seed/--threads/--objects/--ops\n",
      "chaos");
}

int usage() {
  std::fprintf(
      stderr,
      "usage: schedule_explore [--mode exhaustive|fuzz|record|replay]\n"
      "  [--tracker hybrid|optimistic|pessimistic] [--program NAME|chaos]\n"
      "  [--program-seed S] [--threads N] [--objects K] [--ops M]\n"
      "  [--schedules N] [--seed S] [--preemptions P] [--max-steps N]\n"
      "  [--record FILE] [--replay FILE] [--list]\n");
  return kExitUsage;
}

void print_run(const RunResult& r) {
  std::printf("status:  %s\n", ht::schedule::run_status_name(r.status));
  std::printf("steps:   %" PRIu64 "\n", r.steps);
  std::printf("digest:  %016" PRIx64 "\n", r.digest);
  std::printf("trace:   %s\n",
              ht::schedule::trace_to_string(r.trace).c_str());
  for (std::size_t o = 0; o < r.final_states.size(); ++o) {
    std::printf("obj %zu:   %s = %" PRIu64 "\n", o,
                r.final_states[o].to_string().c_str(), r.final_values[o]);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&](std::string& dst) {
      if (i + 1 >= argc) return false;
      dst = argv[++i];
      return true;
    };
    std::string v;
    if (a == "--list") {
      list_programs();
      return kExitOk;
    } else if (a == "--mode" && next(v)) {
      opt.mode = v;
    } else if (a == "--tracker" && next(v)) {
      opt.tracker = v;
    } else if (a == "--program" && next(v)) {
      opt.program = v;
    } else if (a == "--program-seed" && next(v)) {
      opt.program_seed = std::strtoull(v.c_str(), nullptr, 0);
    } else if (a == "--threads" && next(v)) {
      opt.threads = std::atoi(v.c_str());
    } else if (a == "--objects" && next(v)) {
      opt.objects = std::atoi(v.c_str());
    } else if (a == "--ops" && next(v)) {
      opt.ops = std::atoi(v.c_str());
    } else if (a == "--schedules" && next(v)) {
      opt.schedules = std::strtoull(v.c_str(), nullptr, 0);
    } else if (a == "--seed" && next(v)) {
      opt.seed = std::strtoull(v.c_str(), nullptr, 0);
    } else if (a == "--preemptions" && next(v)) {
      opt.preemptions = std::atoi(v.c_str());
    } else if (a == "--max-steps" && next(v)) {
      opt.max_steps = std::strtoull(v.c_str(), nullptr, 0);
    } else if (a == "--record" && next(v)) {
      opt.record_path = v;
    } else if (a == "--replay" && next(v)) {
      opt.replay_path = v;
    } else {
      return usage();
    }
  }

  // Replay mode: everything (tracker, program, schedule) comes from the file.
  if (opt.mode == "replay") {
    if (opt.replay_path.empty()) {
      std::fprintf(stderr, "schedule_explore: --mode replay needs --replay "
                           "FILE\n");
      return kExitUsage;
    }
    TraceFile t;
    std::string err;
    if (!read_trace_file(opt.replay_path, t, err)) {
      std::fprintf(stderr, "schedule_explore: %s: %s\n",
                   opt.replay_path.c_str(), err.c_str());
      return kExitIo;
    }
    opt.tracker = t.tracker;
    opt.program = t.program;
    opt.program_seed = t.program_seed;
    opt.threads = t.threads;
    opt.objects = t.objects;
    opt.ops = t.ops;

    const auto family = ht::schedule::family_from_name(opt.tracker);
    if (!family) return usage();
    Program prog;
    if (!resolve_program(opt.program, opt.program_seed, opt.threads,
                         opt.objects, opt.ops, prog, err)) {
      std::fprintf(stderr, "schedule_explore: %s\n", err.c_str());
      return kExitUsage;
    }
    Explorer ex(*family, prog.nthreads());
    ex.run_config().max_steps = opt.max_steps;
    const RunResult r = ex.replay(prog, t.trace);
    print_run(r);
    if (r.replay_diverged) {
      std::printf("replay:  DIVERGED (recorded choice became ineligible)\n");
      return kExitReplayMismatch;
    }
    if (r.digest != t.digest) {
      std::printf("replay:  DIGEST MISMATCH (recorded %016" PRIx64 ")\n",
                  t.digest);
      return kExitReplayMismatch;
    }
    std::printf("replay:  OK (digest matches recording)\n");
    return kExitOk;
  }

  const auto family = ht::schedule::family_from_name(opt.tracker);
  if (!family) return usage();
  Program prog;
  std::string err;
  if (!resolve_program(opt.program, opt.program_seed, opt.threads,
                       opt.objects, opt.ops, prog, err)) {
    std::fprintf(stderr, "schedule_explore: %s\n", err.c_str());
    return kExitUsage;
  }

  Explorer ex(*family, prog.nthreads());
  ex.run_config().max_steps = opt.max_steps;

  const auto record = [&](std::uint64_t digest,
                          const std::vector<Slot>& trace) {
    if (opt.record_path.empty()) return true;
    TraceFile t;
    t.tracker = ht::schedule::family_name(*family);
    t.program = opt.program;
    t.program_seed = opt.program_seed;
    t.threads = prog.nthreads();
    t.objects = prog.objects;
    t.ops = opt.ops;
    t.digest = digest;
    t.trace = trace;
    if (!write_trace_file(opt.record_path, t)) {
      std::fprintf(stderr, "schedule_explore: cannot write %s\n",
                   opt.record_path.c_str());
      return false;
    }
    std::printf("recorded: %s\n", opt.record_path.c_str());
    return true;
  };

  if (opt.mode == "record") {
    ht::schedule::FuzzStrategy strat(opt.seed, opt.preemptions);
    const RunResult r = ex.run_once(prog, strat);
    print_run(r);
    if (!record(r.digest, r.trace)) return kExitIo;
    return r.complete() ? kExitOk : kExitViolation;
  }

  if (opt.mode == "exhaustive" || opt.mode == "fuzz") {
    const ht::schedule::ExploreOutcome out =
        opt.mode == "exhaustive"
            ? ex.explore_exhaustive(prog, opt.schedules)
            : ex.explore_fuzz(prog, opt.seed, opt.schedules, opt.preemptions);
    std::printf("mode:      %s (%s tracker, program %s)\n", opt.mode.c_str(),
                ht::schedule::family_name(*family), opt.program.c_str());
    std::printf("schedules: %" PRIu64 " (%" PRIu64 " pruned, %" PRIu64
                " deadlocked, %" PRIu64 " truncated)\n",
                out.stats.schedules, out.stats.pruned, out.stats.deadlocks,
                out.stats.truncated);
    if (opt.mode == "exhaustive") {
      std::printf("coverage:  %s\n", out.stats.complete
                                         ? "complete (tree exhausted)"
                                         : "budget exhausted first");
    }
    if (out.violation) {
      std::printf("VIOLATION: %s\n", out.violation->to_string().c_str());
      if (!record(0, out.violation->trace)) return kExitIo;
      return kExitViolation;
    }
    std::printf("result:    all schedules passed the oracles\n");
    return kExitOk;
  }

  return usage();
}
