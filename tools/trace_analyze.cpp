// trace_analyze: the offline happens-before engine's CLI (DESIGN.md §12).
// Loads a recording (v1 or v2, salvaged prefixes included), reconstructs the
// happens-before partial order from dependence edges + release-counter
// stamps, and reports:
//
//   * the trace lint verdict (shared with trace_lint),
//   * HB acyclicity and critical-path length,
//   * region serializability (conflict cycles among enforcer regions),
//   * dependence-graph analytics, exportable as JSON (--json).
//
// Exit codes extend the shared ToolExitCode values (see README.md): 0 OK,
// 1 usage, 2 bad magic, 3 bad version, 4 truncated, 5 checksum mismatch,
// 6 I/O error, 7 structural validation failure, 8 lint failure,
// 9 region-serializability violation (conflict cycle among regions).
//
//   build/tools/trace_analyze [options] <recording.bin>
//     --json FILE        write the full analysis report as JSON
//     --bench FILE       write a BENCH_*.json throughput report (events/sec)
//     --allow-partial    accept a salvaged v2 prefix
//     --make-violation FILE
//                        write a synthetic recording with a dependence
//                        cycle (two threads each waiting on the other's
//                        bump) and exit; analyzing it exits 9 — the CI
//                        injected-violation fixture
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "analysis/hb_engine/hb_engine.hpp"
#include "recorder/recording_io.hpp"
#include "recorder/recording_validate.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: trace_analyze [options] <recording.bin>\n"
      "  --json FILE           write the analysis report as JSON\n"
      "  --bench FILE          write an events/sec benchmark report\n"
      "  --allow-partial       accept a salvaged v2 prefix\n"
      "  --make-violation FILE write a recording with an injected\n"
      "                        serializability violation and exit\n");
  return ht::kExitUsage;
}

// Two threads, each logging a dependence on the other's first bump BEFORE
// performing its own: stamps are monotone (the per-thread lint passes) but
// the cross-thread graph is cyclic — no serial order of the two regions
// exists. A recording like this cannot come from a real run; analyzing it
// must exit kExitUnserializable.
int make_violation(const std::string& path) {
  ht::Recording rec;
  rec.threads.resize(2);
  rec.threads[0].events = {
      {0, ht::LogEventType::kEdge, 1, 1},
      {1, ht::LogEventType::kResponse, ht::kNoThread, 1},
  };
  rec.threads[1].events = {
      {0, ht::LogEventType::kEdge, 0, 1},
      {1, ht::LogEventType::kResponse, ht::kNoThread, 1},
  };
  if (!ht::save_recording(rec, path)) {
    std::fprintf(stderr, "trace_analyze: cannot write '%s'\n", path.c_str());
    return ht::kExitIo;
  }
  std::printf("%s: wrote injected-violation recording\n", path.c_str());
  return ht::kExitOk;
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  out << text << "\n";
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  std::string path, json_out, bench_out, violation_out;
  bool allow_partial = false;
  for (int i = 1; i < argc; ++i) {
    const auto arg_value = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0) return nullptr;
      if (i + 1 >= argc) return "";
      return argv[++i];
    };
    if (const char* v = arg_value("--json")) {
      if (*v == '\0') return usage();
      json_out = v;
    } else if (const char* b = arg_value("--bench")) {
      if (*b == '\0') return usage();
      bench_out = b;
    } else if (const char* m = arg_value("--make-violation")) {
      if (*m == '\0') return usage();
      violation_out = m;
    } else if (std::strcmp(argv[i], "--allow-partial") == 0) {
      allow_partial = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "trace_analyze: unknown option '%s'\n", argv[i]);
      return ht::kExitUsage;
    } else if (path.empty()) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "trace_analyze: more than one input file\n");
      return ht::kExitUsage;
    }
  }
  if (!violation_out.empty()) return make_violation(violation_out);
  if (path.empty()) return usage();

  const ht::analysis::RecordingAnalysisReport rep =
      ht::analysis::analyze_recording_file(path);
  std::printf("%s: %s\n", path.c_str(), rep.to_string().c_str());

  if (!json_out.empty() && !write_file(json_out, rep.to_json().dump())) {
    std::fprintf(stderr, "trace_analyze: cannot write '%s'\n",
                 json_out.c_str());
    return ht::kExitIo;
  }

  if (!bench_out.empty() && rep.load.recording.has_value()) {
    // Throughput of the full pipeline (trace build + HB order + region
    // check + analytics), amortized over enough repetitions to measure.
    using Clock = std::chrono::steady_clock;
    const ht::Recording& rec = *rep.load.recording;
    std::size_t events = 0;
    for (const auto& t : rec.threads) events += t.events.size();
    std::size_t reps = 0;
    const Clock::time_point t0 = Clock::now();
    double elapsed = 0;
    do {
      const ht::analysis::Trace trace =
          ht::analysis::trace_from_recording(rec);
      const ht::analysis::HbOrder hb = ht::analysis::HbOrder::build(trace);
      const auto rs = ht::analysis::check_region_serializability(trace, hb);
      (void)rs;
      ++reps;
      elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
    } while (elapsed < 0.2 && reps < 10000);
    const double events_per_sec =
        elapsed > 0 ? static_cast<double>(events * reps) / elapsed : 0;
    ht::json::Object bench;
    bench["name"] = ht::json::Value("trace_analyze_throughput");
    bench["events"] = ht::json::Value(static_cast<std::uint64_t>(events));
    bench["repetitions"] = ht::json::Value(static_cast<std::uint64_t>(reps));
    bench["elapsed_sec"] = ht::json::Value(elapsed);
    bench["events_per_sec"] = ht::json::Value(events_per_sec);
    if (!write_file(bench_out, ht::json::Value(std::move(bench)).dump())) {
      std::fprintf(stderr, "trace_analyze: cannot write '%s'\n",
                   bench_out.c_str());
      return ht::kExitIo;
    }
    std::printf("bench: %zu event(s) x %zu rep(s) in %.3fs = %.0f events/s\n",
                events, reps, elapsed, events_per_sec);
  }

  // A salvaged prefix still analyzes (a prefix of a genuine recording is
  // genuine), but scripts must opt in to treating it as acceptable.
  if (!rep.load.recording.has_value()) {
    return ht::exit_code_for(rep.load.error);
  }
  if (!rep.load.complete() && !allow_partial) {
    return ht::exit_code_for(rep.load.error);
  }
  const int code = rep.exit_code();
  // exit_code() folds the load error back in; when --allow-partial accepted
  // the prefix, report the analysis verdict instead.
  if (!rep.load.complete() && allow_partial) {
    if (!rep.lint.structure.ok()) return ht::kExitStructure;
    if (!rep.hb_acyclic || !rep.rs.serializable) {
      return ht::kExitUnserializable;
    }
    if (!rep.lint.ok()) return ht::kExitLint;
    return ht::kExitOk;
  }
  return code;
}
