// trace_export: converts a drained telemetry trace ("HTEL" file, written by
// tools/workload_run --trace or TelemetrySession + save_trace) into Chrome
// trace-event JSON loadable in Perfetto / chrome://tracing, and prints the
// Fig-6-style top-N hot-object report.
//
//   build/tools/trace_export <trace.bin>                 # JSON to stdout
//   build/tools/trace_export <trace.bin> --out t.json    # JSON to file
//   build/tools/trace_export <trace.bin> --check         # validate only
//   build/tools/trace_export <trace.bin> --top 10        # hot-object report
//   build/tools/trace_export <trace.bin> --metrics prom  # metrics export
//   build/tools/trace_export <trace.bin> --check --strict # fail on drops
//
// A trace with ring-overwrite drops is incomplete evidence: --check and the
// summary warn about it on stderr, and --strict turns the warning into exit
// code 6 so CI can refuse to gate on a lossy trace.
//
// Exit codes: 0 OK, 2 usage, 3 trace load failure (the load reason is
// printed, e.g. "bad-magic"), 4 generated JSON failed validation (a bug in
// the exporter, never silent), 5 output I/O error, 6 dropped events with
// --strict.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "telemetry/chrome_trace.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace_io.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: trace_export <trace.bin> [--out <file.json>] [--check]"
               " [--strict] [--top <n>] [--metrics json|prom]\n");
  return 2;
}

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
      std::fputc('\n', f) != EOF;
  std::fclose(f);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_path;
  std::string out_path;
  std::string metrics_format;
  bool check = false;
  bool strict = false;
  long top_n = 0;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top_n = std::atol(argv[++i]);
      if (top_n <= 0) return usage();
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_format = argv[++i];
      if (metrics_format != "json" && metrics_format != "prom") return usage();
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "trace_export: unknown option '%s'\n", argv[i]);
      return usage();
    } else if (in_path.empty()) {
      in_path = argv[i];
    } else {
      std::fprintf(stderr, "trace_export: more than one input file\n");
      return usage();
    }
  }
  if (in_path.empty()) return usage();

  ht::telemetry::TraceSnapshot snap;
  const ht::telemetry::TraceLoadResult lr =
      ht::telemetry::load_trace(in_path, snap);
  if (lr != ht::telemetry::TraceLoadResult::kOk) {
    std::fprintf(stderr, "trace_export: %s: %s\n", in_path.c_str(),
                 ht::telemetry::trace_load_result_name(lr));
    return 3;
  }

  const std::uint64_t dropped = snap.total_dropped();
  if (dropped > 0) {
    std::fprintf(stderr,
                 "trace_export: warning: %llu events lost to ring overwrite"
                 " (oldest first); the trace is incomplete%s\n",
                 static_cast<unsigned long long>(dropped),
                 strict ? "" : " (use --strict to fail on this)");
  }

  const std::string json = ht::telemetry::to_chrome_trace_json(snap);

  if (check) {
    std::size_t events = 0;
    std::string error;
    if (!ht::telemetry::validate_chrome_trace(json, &events, &error)) {
      std::fprintf(stderr, "trace_export: generated trace invalid: %s\n",
                   error.c_str());
      return 4;
    }
    std::printf("%s: ok (%llu ring events, %llu dropped, %zu trace events)\n",
                in_path.c_str(),
                static_cast<unsigned long long>(snap.total_events()),
                static_cast<unsigned long long>(snap.total_dropped()), events);
  }

  if (!metrics_format.empty()) {
    const ht::telemetry::MetricsRegistry reg =
        ht::telemetry::aggregate_metrics(snap);
    const std::string text =
        metrics_format == "json" ? reg.to_json() : reg.to_prometheus();
    std::fputs(text.c_str(), stdout);
    if (metrics_format == "json") std::fputc('\n', stdout);
  }

  if (top_n > 0) {
    std::fputs(ht::telemetry::hot_object_report(
                   snap, static_cast<std::size_t>(top_n))
                   .c_str(),
               stdout);
  }

  if (!out_path.empty()) {
    if (!write_file(out_path, json)) {
      std::fprintf(stderr, "trace_export: cannot write %s\n",
                   out_path.c_str());
      return 5;
    }
  } else if (!check && metrics_format.empty() && top_n == 0) {
    // Bare invocation: the JSON is the output.
    std::fputs(json.c_str(), stdout);
    std::fputc('\n', stdout);
  }
  if (strict && dropped > 0) return 6;
  return 0;
}
