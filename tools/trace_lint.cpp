// trace_lint: offline lint for recording files (v1 or v2, including
// salvaged prefixes). Layers the cross-thread dependence checks from
// src/analysis/trace_lint.hpp on top of loading + structural validation:
//
//   * release-counter stamps strictly increasing per thread,
//   * edge values non-decreasing per (sink, source) pair,
//   * the cross-thread dependence graph is acyclic — every wr->rd edge is
//     consistent with a topological order,
//   * salvaged-prefix files are flagged (and fail unless --allow-partial).
//
// Exit codes are the shared ToolExitCode values (see README.md): 0 OK,
// 1 usage, 2 bad magic, 3 bad version, 4 truncated, 5 checksum mismatch,
// 6 I/O error, 7 structural validation failure, 8 lint failure.
//
//   build/tools/trace_lint [--allow-partial] <recording.bin>
#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/trace_lint.hpp"
#include "recorder/recording_validate.hpp"

int main(int argc, char** argv) {
  bool allow_partial = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--allow-partial") == 0) {
      allow_partial = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "trace_lint: unknown option '%s'\n", argv[i]);
      return ht::kExitUsage;
    } else if (path.empty()) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "trace_lint: more than one input file\n");
      return ht::kExitUsage;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: trace_lint [--allow-partial] <recording.bin>\n"
                 "  --allow-partial  accept a salvaged v2 prefix (the lint\n"
                 "                   still runs on the recovered events)\n");
    return ht::kExitUsage;
  }

  const ht::analysis::FileLintResult r =
      ht::analysis::lint_recording_file(path);
  std::printf("%s: %s\n", path.c_str(), r.to_string().c_str());

  // Nothing recoverable: the load reason is the whole story.
  if (!r.load.recording.has_value()) return ht::exit_code_for(r.load.error);
  // A salvaged prefix still lints (a prefix of a genuine recording is
  // genuine), but scripts must opt in to treating it as acceptable.
  if (!r.load.complete() && !allow_partial)
    return ht::exit_code_for(r.load.error);
  if (!r.lint.structure.ok()) return ht::kExitStructure;
  if (!r.lint.issues.empty()) return ht::kExitLint;
  return ht::kExitOk;
}
