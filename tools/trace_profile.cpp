// trace_profile: the "where do the cycles go" report over a drained
// telemetry trace ("HTEL" file, written by tools/workload_run --trace).
// Stitches cross-thread coordination spans, attributes each thread's window
// across wait categories, folds per-object state dwell, and walks the
// cross-thread critical path (src/analysis/profile/).
//
//   build/tools/trace_profile <trace.bin>                     # human report
//   build/tools/trace_profile <trace.bin> --attribution       # same, explicit
//   build/tools/trace_profile <trace.bin> --json out.json     # JSON report
//   build/tools/trace_profile <trace.bin> --collapsed out.folded
//       # folded stacks; flamegraph.pl out.folded > profile.svg
//   build/tools/trace_profile <trace.bin> --tolerance 5
//       # fail if attribution misses >5% of the window
//
// "-" as a --json/--collapsed path writes to stdout. The attribution
// invariant (categories sum to the thread windows) is always checked.
//
// Exit codes: 0 OK, 2 usage, 3 trace load failure (reason printed),
// 5 output I/O error, 6 attribution error above tolerance.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/profile/trace_profile.hpp"
#include "telemetry/trace_io.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: trace_profile <trace.bin> [--attribution]"
               " [--json <file|->] [--collapsed <file|->]"
               " [--tolerance <percent>]\n");
  return 2;
}

bool write_output(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::fputs(text.c_str(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_path;
  std::string json_path;
  std::string collapsed_path;
  bool attribution = false;
  double tolerance_pct = 5.0;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--collapsed") == 0 && i + 1 < argc) {
      collapsed_path = argv[++i];
    } else if (std::strcmp(argv[i], "--attribution") == 0) {
      attribution = true;
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance_pct = std::atof(argv[++i]);
      if (tolerance_pct < 0) return usage();
    } else if (argv[i][0] == '-' && std::strcmp(argv[i], "-") != 0) {
      std::fprintf(stderr, "trace_profile: unknown option '%s'\n", argv[i]);
      return usage();
    } else if (in_path.empty()) {
      in_path = argv[i];
    } else {
      std::fprintf(stderr, "trace_profile: more than one input file\n");
      return usage();
    }
  }
  if (in_path.empty()) return usage();

  ht::telemetry::TraceSnapshot snap;
  const ht::telemetry::TraceLoadResult lr =
      ht::telemetry::load_trace(in_path, snap);
  if (lr != ht::telemetry::TraceLoadResult::kOk) {
    std::fprintf(stderr, "trace_profile: %s: %s\n", in_path.c_str(),
                 ht::telemetry::trace_load_result_name(lr));
    return 3;
  }
  if (snap.total_dropped() > 0) {
    std::fprintf(stderr,
                 "trace_profile: warning: %llu events lost to ring "
                 "overwrite; attribution covers the surviving window only\n",
                 static_cast<unsigned long long>(snap.total_dropped()));
  }

  const ht::analysis::profile::ProfileReport report =
      ht::analysis::profile::build_profile(snap);

  if (!json_path.empty() &&
      !write_output(json_path,
                    ht::analysis::profile::profile_to_json(report))) {
    std::fprintf(stderr, "trace_profile: cannot write %s\n",
                 json_path.c_str());
    return 5;
  }
  if (!collapsed_path.empty() &&
      !write_output(collapsed_path,
                    ht::analysis::profile::profile_to_collapsed(report))) {
    std::fprintf(stderr, "trace_profile: cannot write %s\n",
                 collapsed_path.c_str());
    return 5;
  }
  if (attribution || (json_path.empty() && collapsed_path.empty())) {
    std::fputs(ht::analysis::profile::attribution_report(report).c_str(),
               stdout);
  }

  const double err = report.attribution_error();
  if (err * 100.0 > tolerance_pct) {
    std::fprintf(stderr,
                 "trace_profile: attribution error %.2f%% exceeds "
                 "tolerance %.2f%%\n",
                 err * 100.0, tolerance_pct);
    return 6;
  }
  return 0;
}
