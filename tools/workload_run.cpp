// workload_run: runs one named workload profile under a chosen tracker (or
// all four), reporting per-trial timings — and, with --trace, performs one
// additional traced run with a TelemetrySession installed and saves the
// drained rings as an "HTEL" file for tools/trace_export.
//
//   build/tools/workload_run --profile xalan6 --tracker hybrid
//       --trials 5 --json BENCH_workload_xalan6.json --trace trace.bin
//
// With --tracker all, the traced run uses the hybrid tracker. Tracing needs
// a -DHT_TELEMETRY=ON build; in a default build the tool still runs and
// writes an empty trace, with a warning. Exit codes: 0 OK, 2 usage (or
// unknown profile), 5 output I/O error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "telemetry/chrome_trace.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_io.hpp"
#include "tracking/hybrid_tracker.hpp"
#include "tracking/ideal_tracker.hpp"
#include "tracking/optimistic_tracker.hpp"
#include "tracking/pessimistic_tracker.hpp"
#include "workload/apis.hpp"
#include "workload/harness.hpp"
#include "workload/profiles.hpp"

using namespace ht;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: workload_run --profile <name> "
               "[--tracker hybrid|optimistic|pessimistic|ideal|all] "
               "[--trials <n>] [--json <path>] [--trace <path>] "
               "[--top <n>]\n");
  return 2;
}

struct Options {
  std::string profile;
  std::string tracker = "hybrid";
  int trials = 3;
  std::string json_path;
  std::string trace_path;
  long top_n = 0;
};

// Runs the timed trials for one tracker configuration and adds its row
// (trial series + merged transition statistics) to the report.
template <typename Tracker, typename MakeTracker>
void run_timed(const Options& opt, const WorkloadConfig& cfg,
               WorkloadData& data, const char* name, MakeTracker&& make,
               BenchJsonReport& report) {
  TransitionStats stats;
  const TrialSeries series = run_trial_series(opt.trials, [&] {
    Runtime rt;
    Tracker trk = make(rt);
    WorkloadRunResult r = run_workload(cfg, data, [&](ThreadId) {
      return DirectApi<Tracker>(rt, trk);
    });
    stats = r.stats;  // steady-state counters of the latest trial
    return r;
  });
  report.add_series(cfg.name, name, series);
  report.add_stats(cfg.name, name, stats);
  std::printf("%-12s %-12s median %.4fs  mean %.4fs  ±%.4fs (%d trials)\n",
              cfg.name, name, series.seconds.median(), series.seconds.mean(),
              series.seconds.ci95_half_width(), opt.trials);
}

// One extra run with telemetry installed; saves the drained trace.
template <typename Tracker, typename MakeTracker>
int run_traced(const Options& opt, const WorkloadConfig& cfg,
               WorkloadData& data, const char* name, MakeTracker&& make) {
  telemetry::TelemetrySession session;
  RuntimeConfig rc;
  rc.telemetry = &session;
  Runtime rt(rc);
  Tracker trk = make(rt);
  (void)run_workload(cfg, data, [&](ThreadId) {
    return DirectApi<Tracker>(rt, trk);
  });
  telemetry::TraceSnapshot snap = session.drain();
  if (!telemetry::save_trace(snap, opt.trace_path)) {
    std::fprintf(stderr, "workload_run: cannot write %s\n",
                 opt.trace_path.c_str());
    return 5;
  }
  std::printf("trace: %llu events (%llu dropped) from %zu threads "
              "[%s/%s] -> %s\n",
              static_cast<unsigned long long>(snap.total_events()),
              static_cast<unsigned long long>(snap.total_dropped()),
              snap.threads.size(), cfg.name, name, opt.trace_path.c_str());
#if !HT_TELEM_AVAILABLE
  std::fprintf(stderr,
               "workload_run: warning: built without -DHT_TELEMETRY=ON; "
               "the trace records no events\n");
#endif
  if (opt.top_n > 0) {
    std::fputs(telemetry::hot_object_report(
                   snap, static_cast<std::size_t>(opt.top_n))
                   .c_str(),
               stdout);
  }
  return 0;
}

template <typename Tracker, typename MakeTracker>
int run_tracker(const Options& opt, const WorkloadConfig& cfg,
                WorkloadData& data, const char* name, MakeTracker&& make,
                BenchJsonReport& report, bool traced) {
  run_timed<Tracker>(opt, cfg, data, name, make, report);
  if (traced && !opt.trace_path.empty()) {
    return run_traced<Tracker>(opt, cfg, data, name, make);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      opt.profile = argv[++i];
    } else if (std::strcmp(argv[i], "--tracker") == 0 && i + 1 < argc) {
      opt.tracker = argv[++i];
    } else if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      opt.trials = std::atoi(argv[++i]);
      if (opt.trials < 1) return usage();
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      opt.trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      opt.top_n = std::atol(argv[++i]);
      if (opt.top_n <= 0) return usage();
    } else {
      std::fprintf(stderr, "workload_run: unknown argument '%s'\n", argv[i]);
      return usage();
    }
  }
  if (opt.profile.empty()) return usage();
  const bool all = opt.tracker == "all";
  if (!all && opt.tracker != "hybrid" && opt.tracker != "optimistic" &&
      opt.tracker != "pessimistic" && opt.tracker != "ideal") {
    std::fprintf(stderr, "workload_run: unknown tracker '%s'\n",
                 opt.tracker.c_str());
    return usage();
  }

  const double scale = scale_from_env();
  const WorkloadConfig cfg = profile_by_name(opt.profile.c_str(), scale);
  WorkloadData data(cfg);

  BenchJsonReport report("workload_run");
  report.set_meta("profile", json::Value(opt.profile));
  report.set_meta("tracker", json::Value(opt.tracker));
  report.set_meta("trials", json::Value(opt.trials));
  report.set_meta("scale", json::Value(scale));
  report.set_meta("threads", json::Value(cfg.threads));
  report.set_meta("ops_per_thread", json::Value(cfg.ops_per_thread));
  report.set_meta("telemetry_build", json::Value(HT_TELEM_AVAILABLE != 0));

  int rc = 0;
  // With --tracker all, the traced run (if any) uses hybrid — the paper's
  // headline configuration.
  if (all || opt.tracker == "hybrid") {
    rc = run_tracker<HybridTracker<true>>(
        opt, cfg, data, "hybrid",
        [](Runtime& rt) { return HybridTracker<true>(rt, HybridConfig{}); },
        report, /*traced=*/true);
    if (rc != 0) return rc;
  }
  if (all || opt.tracker == "optimistic") {
    rc = run_tracker<OptimisticTracker<true>>(
        opt, cfg, data, "optimistic",
        [](Runtime& rt) { return OptimisticTracker<true>(rt); }, report,
        /*traced=*/!all);
    if (rc != 0) return rc;
  }
  if (all || opt.tracker == "pessimistic") {
    rc = run_tracker<PessimisticTracker<true>>(
        opt, cfg, data, "pessimistic",
        [](Runtime& rt) { return PessimisticTracker<true>(rt); }, report,
        /*traced=*/!all);
    if (rc != 0) return rc;
  }
  if (all || opt.tracker == "ideal") {
    rc = run_tracker<IdealTracker<true>>(
        opt, cfg, data, "ideal",
        [](Runtime& rt) { return IdealTracker<true>(rt); }, report,
        /*traced=*/!all);
    if (rc != 0) return rc;
  }

  if (!opt.json_path.empty()) {
    if (!report.write(opt.json_path)) return 5;
    std::printf("json report -> %s\n", opt.json_path.c_str());
  }
  return 0;
}
