// workload_run: runs one named workload profile under a chosen tracker (or
// all four), reporting per-trial timings — and, with --trace, performs one
// additional traced run with a TelemetrySession installed and saves the
// drained rings as an "HTEL" file for tools/trace_export.
//
//   build/tools/workload_run --profile xalan6 --tracker hybrid
//       --trials 5 --json BENCH_workload_xalan6.json --trace trace.bin
//
// With --tracker all, the traced run uses the hybrid tracker. Tracing needs
// a -DHT_TELEMETRY=ON build; in a default build the tool still runs and
// writes an empty trace, with a warning. Exit codes: 0 OK, 2 usage (or
// unknown profile), 5 output I/O error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "faultinject/fault_injector.hpp"
#include "recorder/recorder.hpp"
#include "recorder/recording_io.hpp"
#include "resilience/governor.hpp"
#include "resilience/quarantine.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_io.hpp"
#include "tracking/hybrid_tracker.hpp"
#include "tracking/ideal_tracker.hpp"
#include "tracking/optimistic_tracker.hpp"
#include "tracking/pessimistic_tracker.hpp"
#include "workload/apis.hpp"
#include "workload/harness.hpp"
#include "workload/profiles.hpp"

using namespace ht;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: workload_run --profile <name> "
               "[--tracker hybrid|optimistic|pessimistic|ideal|all] "
               "[--trials <n>] [--json <path>] [--trace <path>] "
               "[--top <n>]\n"
               "       workload_run --profile <name> --chaos "
               "[--chaos-seed <n>] [--death-p100k <n>] [--stall-epochs <n>] "
               "[--on-stall quarantine|continue] [--record <path>] "
               "[--trace <path>]\n");
  return 2;
}

struct Options {
  std::string profile;
  std::string tracker = "hybrid";
  int trials = 3;
  std::string json_path;
  std::string trace_path;
  long top_n = 0;
  // Chaos mode (DESIGN.md §11 / README "chaos workload quickstart"): one
  // hybrid run under injected stuck threads and torn recording writes, with
  // the watchdog escalating to quarantine and the recording streamed
  // crash-tolerantly. Replaces the timed trials.
  bool chaos = false;
  std::uint64_t chaos_seed = 42;
  // Default tuned so deaths land mid-body, when victims hold deferred locks
  // worth seizing (higher rates kill threads during init, before they own
  // anything; see DESIGN.md §11.5).
  std::uint32_t death_p100k = 5;
  std::uint64_t stall_epochs = 512;
  WatchdogConfig::OnStall on_stall = WatchdogConfig::OnStall::kQuarantine;
  std::string record_path;
};

// One chaos run. Exit codes: 0 run completed, 5 output I/O error.
int run_chaos(const Options& opt, const WorkloadConfig& cfg,
              WorkloadData& data) {
  using Tracker = HybridTracker<true, DependenceRecorder>;

  FaultConfig fc;
  fc.seed = opt.chaos_seed;
  fc.enable(FaultSite::kThreadDeath, opt.death_p100k);
  // Chaos deaths are PERMANENT stalls (DESIGN.md §11): the dead thread
  // freezes at every safe-point flavor, so only quarantine + seizure (or
  // fail-fast) can complete the run.
  fc.stuck_death = true;
  // Slow-I/O flavor: torn recording writes as a transient burst the stream
  // writer's capped retry outlives.
  fc.enable(FaultSite::kIoShortWrite, 2'000);
  fc.io_failure_cap = 2;
  FaultInjector injector(fc);

  telemetry::TelemetrySession session;

  // Standard self-healing wiring: lease expiry -> quarantine -> sweep every
  // object the victim still owns and seal its dependence log.
  resilience::QuarantineSweep sweep(
      [&data](const std::function<void(ObjectMeta&)>& fn) {
        data.for_each_meta(fn);
      });

  RuntimeConfig rc;
  rc.watchdog.on_stall = opt.on_stall;
  rc.watchdog.stall_epochs = opt.stall_epochs;
  rc.fault_injector = &injector;
  rc.telemetry = &session;
  rc.resilience.on_quarantine = std::ref(sweep);
  Runtime rt(rc);

  DependenceRecorder recorder(rt);
  sweep.set_seal([&recorder](ThreadId v) { recorder.on_quarantine(v); });

  std::optional<RecordingStreamWriter> writer;
  if (!opt.record_path.empty()) {
    writer.emplace(opt.record_path, static_cast<std::uint32_t>(cfg.threads),
                   &injector);
    if (!writer->ok()) {
      std::fprintf(stderr, "workload_run: cannot open %s\n",
                   opt.record_path.c_str());
      return 5;
    }
    recorder.set_stream_writer(&*writer);
  }

  Tracker trk(rt, HybridConfig{}, &recorder);
  resilience::ResilienceGovernor governor(&trk.policy());

  WorkloadRunResult r = run_workload(cfg, data, [&](ThreadId) {
    return DirectApi<Tracker>(rt, trk, &recorder);
  });

  if (writer.has_value()) {
    const bool stream_ok =
        recorder.finish_stream(static_cast<ThreadId>(cfg.threads)) &&
        writer->ok();
    if (!stream_ok) {
      std::fprintf(stderr, "workload_run: recording stream to %s failed\n",
                   opt.record_path.c_str());
      return 5;
    }
    std::printf("recording -> %s\n", opt.record_path.c_str());
  }

  telemetry::TraceSnapshot snap = session.drain();
  // Post-hoc governor window over the whole run: any quarantine or lease
  // expiry classifies it as a storm (live embedders feed periodic windows).
  const resilience::WindowSample w = resilience::window_from_snapshot(snap);
  governor.note_window(w);
  governor.note_window(w);

  std::printf(
      "chaos run [%s/hybrid]: %.4fs, %d thread(s) quarantined, "
      "%llu object(s) seized, governor %s (storm=%d)\n",
      cfg.name, r.seconds, r.quarantined,
      static_cast<unsigned long long>(sweep.objects_seized()),
      governor.degraded() ? "degraded" : "nominal", governor.is_storm(w));
  std::printf("%s\n", injector.summary().c_str());

  if (!opt.trace_path.empty()) {
    if (!telemetry::save_trace(snap, opt.trace_path)) {
      std::fprintf(stderr, "workload_run: cannot write %s\n",
                   opt.trace_path.c_str());
      return 5;
    }
    std::printf("trace: %llu events from %zu threads -> %s\n",
                static_cast<unsigned long long>(snap.total_events()),
                snap.threads.size(), opt.trace_path.c_str());
#if !HT_TELEM_AVAILABLE
    std::fprintf(stderr,
                 "workload_run: warning: built without -DHT_TELEMETRY=ON; "
                 "the trace records no events\n");
#endif
  }
  return 0;
}

// Runs the timed trials for one tracker configuration and adds its row
// (trial series + merged transition statistics) to the report.
template <typename Tracker, typename MakeTracker>
void run_timed(const Options& opt, const WorkloadConfig& cfg,
               WorkloadData& data, const char* name, MakeTracker&& make,
               BenchJsonReport& report) {
  TransitionStats stats;
  std::vector<TransitionStats> per_thread;
  const TrialSeries series = run_trial_series(opt.trials, [&] {
    Runtime rt;
    Tracker trk = make(rt);
    WorkloadRunResult r = run_workload(cfg, data, [&](ThreadId) {
      return DirectApi<Tracker>(rt, trk);
    });
    stats = r.stats;  // steady-state counters of the latest trial
    per_thread = r.per_thread_stats;
    return r;
  });
  report.add_series(cfg.name, name, series);
  report.add_stats(cfg.name, name, stats);
  // Per-thread fast-path and elision-cache breakdown of the latest trial.
  // Fast-path hits = accesses needing no atomic operation beyond the state
  // load (optimistic same-state + pessimistic reentrant); elision hits
  // skipped even that load. Thread-to-thread skew here localizes which
  // threads' working sets are churning owners.
  json::Array rows;
  for (std::size_t t = 0; t < per_thread.size(); ++t) {
    const TransitionStats& s = per_thread[t];
    json::Object o;
    o["thread"] = json::Value(static_cast<std::uint64_t>(t));
    o["accesses"] = json::Value(s.accesses());
    o["fast_path_hits"] = json::Value(s.opt_same + s.pess_reentrant);
    o["elision_hits"] = json::Value(s.elision_hits);
    o["elision_misses"] = json::Value(s.elision_misses);
    o["elision_flushes"] = json::Value(s.elision_flushes);
    o["elision_hit_rate"] = json::Value(s.elision_hit_rate());
    rows.push_back(json::Value(std::move(o)));
  }
  report.add_value(cfg.name, name, "per_thread", json::Value(std::move(rows)));
  report.add_value(cfg.name, name, "elision_hit_rate",
                   json::Value(stats.elision_hit_rate()));
  std::printf("%-12s %-12s median %.4fs  mean %.4fs  ±%.4fs (%d trials)  "
              "elision %.1f%%\n",
              cfg.name, name, series.seconds.median(), series.seconds.mean(),
              series.seconds.ci95_half_width(), opt.trials,
              100.0 * stats.elision_hit_rate());
}

// One extra run with telemetry installed; saves the drained trace.
template <typename Tracker, typename MakeTracker>
int run_traced(const Options& opt, const WorkloadConfig& cfg,
               WorkloadData& data, const char* name, MakeTracker&& make) {
  telemetry::TelemetrySession session;
  RuntimeConfig rc;
  rc.telemetry = &session;
  Runtime rt(rc);
  Tracker trk = make(rt);
  (void)run_workload(cfg, data, [&](ThreadId) {
    return DirectApi<Tracker>(rt, trk);
  });
  telemetry::TraceSnapshot snap = session.drain();
  if (!telemetry::save_trace(snap, opt.trace_path)) {
    std::fprintf(stderr, "workload_run: cannot write %s\n",
                 opt.trace_path.c_str());
    return 5;
  }
  std::printf("trace: %llu events (%llu dropped) from %zu threads "
              "[%s/%s] -> %s\n",
              static_cast<unsigned long long>(snap.total_events()),
              static_cast<unsigned long long>(snap.total_dropped()),
              snap.threads.size(), cfg.name, name, opt.trace_path.c_str());
#if !HT_TELEM_AVAILABLE
  std::fprintf(stderr,
               "workload_run: warning: built without -DHT_TELEMETRY=ON; "
               "the trace records no events\n");
#endif
  if (opt.top_n > 0) {
    std::fputs(telemetry::hot_object_report(
                   snap, static_cast<std::size_t>(opt.top_n))
                   .c_str(),
               stdout);
  }
  return 0;
}

template <typename Tracker, typename MakeTracker>
int run_tracker(const Options& opt, const WorkloadConfig& cfg,
                WorkloadData& data, const char* name, MakeTracker&& make,
                BenchJsonReport& report, bool traced) {
  run_timed<Tracker>(opt, cfg, data, name, make, report);
  if (traced && !opt.trace_path.empty()) {
    return run_traced<Tracker>(opt, cfg, data, name, make);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      opt.profile = argv[++i];
    } else if (std::strcmp(argv[i], "--tracker") == 0 && i + 1 < argc) {
      opt.tracker = argv[++i];
    } else if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      opt.trials = std::atoi(argv[++i]);
      if (opt.trials < 1) return usage();
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      opt.trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      opt.top_n = std::atol(argv[++i]);
      if (opt.top_n <= 0) return usage();
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      opt.chaos = true;
    } else if (std::strcmp(argv[i], "--chaos-seed") == 0 && i + 1 < argc) {
      opt.chaos_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--death-p100k") == 0 && i + 1 < argc) {
      opt.death_p100k =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--stall-epochs") == 0 && i + 1 < argc) {
      opt.stall_epochs = std::strtoull(argv[++i], nullptr, 10);
      if (opt.stall_epochs == 0) return usage();
    } else if (std::strcmp(argv[i], "--on-stall") == 0 && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "quarantine") {
        opt.on_stall = WatchdogConfig::OnStall::kQuarantine;
      } else if (v == "continue") {
        opt.on_stall = WatchdogConfig::OnStall::kContinue;
      } else {
        return usage();
      }
    } else if (std::strcmp(argv[i], "--record") == 0 && i + 1 < argc) {
      opt.record_path = argv[++i];
    } else {
      std::fprintf(stderr, "workload_run: unknown argument '%s'\n", argv[i]);
      return usage();
    }
  }
  if (opt.profile.empty()) return usage();
  const bool all = opt.tracker == "all";
  if (!all && opt.tracker != "hybrid" && opt.tracker != "optimistic" &&
      opt.tracker != "pessimistic" && opt.tracker != "ideal") {
    std::fprintf(stderr, "workload_run: unknown tracker '%s'\n",
                 opt.tracker.c_str());
    return usage();
  }

  const double scale = scale_from_env();
  const WorkloadConfig cfg = profile_by_name(opt.profile.c_str(), scale);
  WorkloadData data(cfg);

  if (opt.chaos) return run_chaos(opt, cfg, data);

  BenchJsonReport report("workload_run");
  report.set_meta("profile", json::Value(opt.profile));
  report.set_meta("tracker", json::Value(opt.tracker));
  report.set_meta("trials", json::Value(opt.trials));
  report.set_meta("scale", json::Value(scale));
  report.set_meta("threads", json::Value(cfg.threads));
  report.set_meta("ops_per_thread", json::Value(cfg.ops_per_thread));
  report.set_meta("telemetry_build", json::Value(HT_TELEM_AVAILABLE != 0));

  int rc = 0;
  // With --tracker all, the traced run (if any) uses hybrid — the paper's
  // headline configuration.
  if (all || opt.tracker == "hybrid") {
    rc = run_tracker<HybridTracker<true>>(
        opt, cfg, data, "hybrid",
        [](Runtime& rt) { return HybridTracker<true>(rt, HybridConfig{}); },
        report, /*traced=*/true);
    if (rc != 0) return rc;
  }
  if (all || opt.tracker == "optimistic") {
    rc = run_tracker<OptimisticTracker<true>>(
        opt, cfg, data, "optimistic",
        [](Runtime& rt) { return OptimisticTracker<true>(rt); }, report,
        /*traced=*/!all);
    if (rc != 0) return rc;
  }
  if (all || opt.tracker == "pessimistic") {
    rc = run_tracker<PessimisticTracker<true>>(
        opt, cfg, data, "pessimistic",
        [](Runtime& rt) { return PessimisticTracker<true>(rt); }, report,
        /*traced=*/!all);
    if (rc != 0) return rc;
  }
  if (all || opt.tracker == "ideal") {
    rc = run_tracker<IdealTracker<true>>(
        opt, cfg, data, "ideal",
        [](Runtime& rt) { return IdealTracker<true>(rt); }, report,
        /*traced=*/!all);
    if (rc != 0) return rc;
  }

  if (!opt.json_path.empty()) {
    if (!report.write(opt.json_path)) return 5;
    std::printf("json report -> %s\n", opt.json_path.c_str());
  }
  return 0;
}
